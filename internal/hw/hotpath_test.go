package hw

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
)

// refEncrypt / refDecrypt are the reference serial XEX: one EncryptBlock /
// DecryptBlock call per 16-byte block, exactly the pre-optimization hot
// path. The line/page APIs must be byte-identical to them.
func refEncrypt(s *PageCipher, pa PhysAddr, b []byte) {
	for off := 0; off+BlockSize <= len(b); off += BlockSize {
		s.EncryptBlock(pa+PhysAddr(off), b[off:off+BlockSize])
	}
}

func refDecrypt(s *PageCipher, pa PhysAddr, b []byte) {
	for off := 0; off+BlockSize <= len(b); off += BlockSize {
		s.DecryptBlock(pa+PhysAddr(off), b[off:off+BlockSize])
	}
}

func TestLineAPIMatchesPerBlockGolden(t *testing.T) {
	var key Key
	for i := range key {
		key[i] = byte(3*i + 7)
	}
	s, err := NewPageCipher(key)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{BlockSize, LineSize, 3 * LineSize, PageSize, PageSize + 5} {
		plain := make([]byte, n)
		rng.Read(plain)
		for _, pa := range []PhysAddr{0, PageSize, 7 * PageSize, 0x123450} {
			want := append([]byte{}, plain...)
			refEncrypt(s, pa, want)

			got := append([]byte{}, plain...)
			s.EncryptLine(pa, got)
			if !bytes.Equal(got, want) {
				t.Fatalf("EncryptLine(pa=%#x, n=%d) diverges from per-block path", pa, n)
			}
			if n == PageSize {
				got2 := append([]byte{}, plain...)
				s.EncryptPage(pa, got2)
				if !bytes.Equal(got2, want) {
					t.Fatalf("EncryptPage(pa=%#x) diverges from per-block path", pa)
				}
			}
			s.DecryptLine(pa, got)
			if !bytes.Equal(got, plain) {
				t.Fatalf("DecryptLine(pa=%#x, n=%d) does not invert EncryptLine", pa, n)
			}
			refDecrypt(s, pa, want)
			if !bytes.Equal(want, plain) {
				t.Fatalf("reference decrypt mismatch (pa=%#x, n=%d)", pa, n)
			}
		}
	}
}

func TestEngineLineAPIRequiresKey(t *testing.T) {
	e := NewEngine()
	buf := make([]byte, LineSize)
	if err := e.EncryptLine(9, 0, buf); !errors.Is(err, ErrNoKey) {
		t.Fatalf("EncryptLine without key: %v, want ErrNoKey", err)
	}
	if err := e.DecryptPage(9, 0, buf); !errors.Is(err, ErrNoKey) {
		t.Fatalf("DecryptPage without key: %v, want ErrNoKey", err)
	}
	if _, err := e.Slot(9); !errors.Is(err, ErrNoKey) {
		t.Fatalf("Slot without key: %v, want ErrNoKey", err)
	}
}

// TestControllerAccessPatterns drives misaligned, cross-line and
// partial-block reads and writes — plaintext and encrypted — against a
// plaintext shadow model, and checks the DRAM ciphertext against the
// reference per-block XEX after every write.
func TestControllerAccessPatterns(t *testing.T) {
	const asid = ASID(7)
	cases := []struct {
		name string
		pa   PhysAddr
		n    int
	}{
		{"block-aligned-line", 0, LineSize},
		{"misaligned-within-block", 3, 5},
		{"cross-block", 13, 10},
		{"cross-line", LineSize - 7, 20},
		{"cross-line-block-aligned", LineSize - 16, 32},
		{"partial-head-tail", 17, 94},
		{"full-page", PageSize, PageSize},
		{"page-misaligned", PageSize + 1, PageSize - 2},
		{"single-byte", 2*PageSize + 33, 1},
		{"tail-of-block", 31, 1},
		{"head-unaligned-tail-aligned", 5, 27},
		{"head-aligned-tail-unaligned", 48, 21},
	}
	for _, enc := range []bool{false, true} {
		name := "plain"
		if enc {
			name = "encrypted"
		}
		t.Run(name, func(t *testing.T) {
			c := testController(t, 8, 32)
			key := installKey(t, c, asid, 9)
			ref, err := NewPageCipher(key)
			if err != nil {
				t.Fatal(err)
			}
			// Initialise every byte through the controller so all of DRAM
			// is well-formed (ciphertext, in the encrypted variant) and
			// any widened read-back decrypts cleanly.
			shadow := make([]byte, c.Mem.Size())
			rng := rand.New(rand.NewSource(1))
			rng.Read(shadow)
			for pa := PhysAddr(0); uint64(pa) < c.Mem.Size(); pa += PageSize {
				if err := c.Write(Access{PA: pa, Encrypted: enc, ASID: asid}, shadow[pa:pa+PageSize]); err != nil {
					t.Fatal(err)
				}
			}

			for _, tc := range cases {
				t.Run(tc.name, func(t *testing.T) {
					a := Access{PA: tc.pa, Encrypted: enc, ASID: asid}
					data := make([]byte, tc.n)
					rng.Read(data)
					if err := c.Write(a, data); err != nil {
						t.Fatalf("Write(%#x, %d): %v", tc.pa, tc.n, err)
					}
					copy(shadow[tc.pa:], data)

					// Read back through the controller (hits the cache for
					// some lines, DRAM for others) and compare to shadow.
					got := make([]byte, tc.n+8)
					start := tc.pa
					if start >= 4 {
						start -= 4 // widen to cover bytes around the write
					}
					if int(start)+len(got) > int(c.Mem.Size()) {
						got = got[:c.Mem.Size()-uint64(start)]
					}
					if err := c.Read(Access{PA: start, Encrypted: enc, ASID: asid}, got); err != nil {
						t.Fatalf("Read(%#x, %d): %v", start, len(got), err)
					}
					if !bytes.Equal(got, shadow[start:int(start)+len(got)]) {
						t.Fatalf("read-back mismatch at %#x+%d", start, len(got))
					}

					// DRAM must hold the reference per-block transform of
					// the shadow over every block the write overlapped.
					first := tc.pa &^ (BlockSize - 1)
					end := (tc.pa + PhysAddr(tc.n) + BlockSize - 1) &^ (BlockSize - 1)
					want := append([]byte{}, shadow[first:end]...)
					if enc {
						refEncrypt(ref, first, want)
					}
					raw := make([]byte, end-first)
					if err := c.Mem.ReadRaw(first, raw); err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(raw, want) {
						t.Fatalf("DRAM ciphertext diverges from reference per-block XEX at %#x", first)
					}
				})
			}
		})
	}
}

// TestWriteNoKeyLeavesCacheIntact is the regression test for the ordering
// bug where Controller.Write mutated cached plaintext before discovering
// the ASID had no key, leaving cache and DRAM inconsistent.
func TestWriteNoKeyLeavesCacheIntact(t *testing.T) {
	c := testController(t, 4, 64)
	installKey(t, c, 5, 1)
	a := Access{PA: 0, Encrypted: true, ASID: 5}
	orig := bytes.Repeat([]byte{0xAB}, LineSize)
	if err := c.Write(a, orig); err != nil {
		t.Fatal(err)
	}
	// Populate the cache with the line's plaintext.
	buf := make([]byte, LineSize)
	if err := c.Read(a, buf); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Cache.Peek(0); !ok {
		t.Fatal("line 0 should be cached after the read")
	}
	// Pull the key out from under the next write: it must fault without
	// touching the cached plaintext or DRAM.
	c.Eng.Uninstall(5)
	evil := bytes.Repeat([]byte{0xCD}, LineSize)
	if err := c.Write(a, evil); !errors.Is(err, ErrNoKey) {
		t.Fatalf("Write without key: %v, want ErrNoKey", err)
	}
	line, ok := c.Cache.Peek(0)
	if !ok {
		t.Fatal("line 0 vanished from the cache")
	}
	if !bytes.Equal(line[:], orig) {
		t.Fatal("failed write mutated cached plaintext")
	}
}

// TestWriteClampsAtTopOfMemory is the regression test for the RMW span
// overrunning a non-block-aligned memory size: a write into the trailing
// sub-block region (and one crossing into it) must succeed, like Read.
func TestWriteClampsAtTopOfMemory(t *testing.T) {
	const extra = 24 // trailing non-block-multiple region
	mem := NewMemoryBytes(PageSize + extra)
	c := NewController(mem, 16)
	installKey(t, c, 3, 2)
	a := func(pa PhysAddr) Access { return Access{PA: pa, Encrypted: true, ASID: 3} }

	// Write crossing from the last full block into the raw tail.
	data := []byte("spans the last block boundary")
	pa := PhysAddr(mem.Size()) - PhysAddr(len(data))
	if err := c.Write(a(pa), data); err != nil {
		t.Fatalf("Write at top of memory: %v", err)
	}
	got := make([]byte, len(data))
	if err := c.Read(a(pa), got); err != nil {
		t.Fatalf("Read at top of memory: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("top-of-memory round trip: got %q want %q", got, data)
	}

	// Write entirely inside the trailing sub-block region.
	tail := []byte{1, 2, 3}
	pa = PhysAddr(mem.Size()) - 3
	if err := c.Write(a(pa), tail); err != nil {
		t.Fatalf("Write in sub-block tail: %v", err)
	}
	got = make([]byte, 3)
	if err := c.Read(a(pa), got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, tail) {
		t.Fatalf("sub-block tail round trip: got %v want %v", got, tail)
	}

	// Out-of-range writes still fault.
	if err := c.Write(a(PhysAddr(mem.Size())-1), []byte{1, 2}); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("overrunning write: %v, want ErrOutOfRange", err)
	}
}

func TestSetAssociativeEviction(t *testing.T) {
	// 2 sets × 2 ways: lines 0, 128, 256 share set 0; 64 and 192 share
	// set 1 (set = (pa/64) mod 2).
	c := NewCacheWays(4, 2)
	var l [LineSize]byte
	fill := func(pa PhysAddr) { c.Fill(pa, &l) }
	fill(0)
	fill(128)
	fill(256) // set 0 full: replacement evicts line 0
	if _, ok := c.Peek(0); ok {
		t.Fatal("line 0 should have been evicted from set 0")
	}
	if _, ok := c.Peek(128); !ok {
		t.Fatal("line 128 missing after eviction in its set")
	}
	if c.Evictions() != 1 {
		t.Fatalf("evictions = %d, want 1", c.Evictions())
	}
	// Set 1 was never touched by set 0's pressure.
	fill(64)
	fill(192)
	if c.Len() != 4 {
		t.Fatalf("Len = %d, want 4", c.Len())
	}
	if _, ok := c.Peek(64); !ok {
		t.Fatal("line 64 missing from set 1")
	}
}

func TestClockSecondChance(t *testing.T) {
	// Single set, 4 ways. The sequence below leaves line 128 older than
	// line 192 but referenced by a lookup; CLOCK must spare 128 and evict
	// the younger, unreferenced 192 — where FIFO would kill 128.
	c := NewCacheWays(4, 4)
	var l [LineSize]byte
	fill := func(pa PhysAddr) { c.Fill(pa, &l) }
	fill(0)
	fill(64)
	fill(128)
	fill(192)
	fill(256) // sweep clears all reference bits, evicts line 0
	if _, ok := c.Peek(0); ok {
		t.Fatal("line 0 should have been the first victim")
	}
	if _, ok := c.Lookup(128); !ok { // re-reference 128
		t.Fatal("line 128 missing")
	}
	fill(320) // evicts unreferenced 64
	if _, ok := c.Peek(64); ok {
		t.Fatal("line 64 should have been evicted")
	}
	fill(384) // hand passes referenced 128 (clearing it), evicts 192
	if _, ok := c.Peek(128); !ok {
		t.Fatal("referenced line 128 should have survived the sweep")
	}
	if _, ok := c.Peek(192); ok {
		t.Fatal("unreferenced line 192 should have been the CLOCK victim")
	}
	if c.Evictions() != 3 {
		t.Fatalf("evictions = %d, want 3", c.Evictions())
	}
}

func TestSetAssociativeInvalidate(t *testing.T) {
	c := NewCacheWays(8, 2)
	var l [LineSize]byte
	for pa := PhysAddr(0); pa < 512; pa += LineSize {
		c.Fill(pa, &l)
	}
	if c.Len() != 8 {
		t.Fatalf("Len = %d, want 8", c.Len())
	}
	// Invalidate a span covering lines 64..191 (parts of three lines).
	c.Invalidate(70, 120)
	for _, pa := range []PhysAddr{64, 128} {
		if _, ok := c.Peek(pa); ok {
			t.Fatalf("line %d survived Invalidate", pa)
		}
	}
	for _, pa := range []PhysAddr{0, 192, 256} {
		if _, ok := c.Peek(pa); !ok {
			t.Fatalf("line %d wrongly invalidated", pa)
		}
	}
	if c.Len() != 6 {
		t.Fatalf("Len after invalidate = %d, want 6", c.Len())
	}
	c.Flush()
	if c.Len() != 0 {
		t.Fatalf("Len after flush = %d, want 0", c.Len())
	}
	if _, ok := c.Peek(0); ok {
		t.Fatal("flush left a line behind")
	}
}

func TestCacheDisabled(t *testing.T) {
	c := NewCache(0)
	var l [LineSize]byte
	c.Fill(0, &l)
	if _, ok := c.Lookup(0); ok {
		t.Fatal("capacity-0 cache must never hit")
	}
	c.Invalidate(0, PageSize) // must not panic
	c.Flush()
	if c.Len() != 0 {
		t.Fatal("capacity-0 cache must stay empty")
	}
}
