package mmu

import (
	"fmt"

	"fidelius/internal/hw"
	"fidelius/internal/telemetry"
)

// Nested performs the two-dimensional translation of an SEV guest: guest
// virtual address → (guest page tables, themselves in encrypted guest
// memory, themselves addressed by GPA through the NPT) → guest physical
// address → (nested page table) → host physical address.
//
// Guest is the guest's own page-table space expressed over GPAs; NPT maps
// GPA→HPA. The paper's C-bit priority rule is applied at the leaf: a C-bit
// in the guest page table selects the guest's key; otherwise a C-bit in the
// NPT selects the host (SME) key — that is how Fidelius-enc simulates SEV
// with SME by setting C-bits in the nested tables (Section 7.1).
type Nested struct {
	Ctl *hw.Controller
	// GuestRoot is the GPA of the guest's top-level page table (CR3).
	GuestRoot uint64
	// NPT is the nested page table (plaintext host memory).
	NPT *Space
	// ASID tags the guest's encrypted accesses.
	ASID hw.ASID
	// GuestPTEncrypted reports whether the guest keeps its page tables in
	// encrypted memory (the SEV default).
	GuestPTEncrypted bool
	// Dirty, when armed, logs the GPA of every write that faults on a
	// write-protected NPT leaf — the dirty-page tracking live migration
	// drives by clearing W bits on the nested table.
	Dirty *DirtyLog
}

// StartDirtyLog arms the walker's dirty log, allocating it on first use
// for a guest of the given page count.
func (n *Nested) StartDirtyLog(pages int) {
	if n.Dirty == nil {
		n.Dirty = NewDirtyLog(pages)
	}
	n.Dirty.Start()
}

// StopDirtyLog disarms the walker's dirty log.
func (n *Nested) StopDirtyLog() { n.Dirty.Stop() }

// CollectDirty drains the walker's dirty log, returning the GFNs written
// (and faulted) since the previous collection.
func (n *Nested) CollectDirty() []uint64 { return n.Dirty.Collect() }

// npfAccess translates a guest-table GPA through the NPT, raising an
// NPTViolation on failure.
func (n *Nested) gpaToHPA(gpa uint64, access AccessType) (hw.PhysAddr, PTE, error) {
	tr, err := n.NPT.Translate(gpa, access, true, false)
	if err != nil {
		if pf, ok := err.(*PageFault); ok {
			if access == Write && pf.Reason == WriteProtected && n.Dirty.MarkGPA(gpa) {
				if h := n.hub(); h != nil {
					h.M.DirtyMarks.Inc()
				}
			}
			if h := n.hub(); h != nil {
				h.M.NPTViolations.Inc()
				if h.Tracing() {
					h.Emit(telemetry.KindNPTViolation,
						h.VMForASID(uint32(n.ASID)), uint32(n.ASID),
						0, gpa, uint64(access))
				}
				// A write fault on a present mapping with no dirty log
				// armed is not lazy population and not dirty tracking:
				// it is the fault signature of a hypervisor-side remap
				// or permission downgrade (the SEVered probe pattern),
				// so it earns a forensic record.
				if h.Auditing() && pf.Reason == WriteProtected && !n.Dirty.Enabled() {
					h.Audit("npt-wp-fault", h.VMForASID(uint32(n.ASID)),
						fmt.Sprintf("write to write-protected gpa %#x with dirty logging off", gpa))
				}
			}
			return 0, 0, &NPTViolation{GPA: gpa, Access: access, Reason: pf.Reason}
		}
		return 0, 0, err
	}
	return tr.HPA + hw.PhysAddr(gpa&(hw.PageSize-1)), tr.PTE, nil
}

func (n *Nested) readGuestEntry(tableGPA uint64, idx int) (PTE, error) {
	hpa, _, err := n.gpaToHPA(tableGPA+uint64(idx*8), Read)
	if err != nil {
		return 0, err
	}
	var b [8]byte
	a := hw.Access{PA: hpa, Encrypted: n.GuestPTEncrypted, ASID: n.ASID}
	if err := n.Ctl.Read(a, b[:]); err != nil {
		return 0, err
	}
	return PTE(uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56), nil
}

// NestedTranslation is the outcome of a full two-dimensional walk.
type NestedTranslation struct {
	GPA uint64      // guest physical page base
	HPA hw.PhysAddr // host physical page base
	// Encrypted and ASID are the effective memory-controller attributes
	// after applying the C-bit priority rule.
	Encrypted bool
	ASID      hw.ASID
	GuestPTE  PTE
	NPTE      PTE
}

// Translate resolves a guest virtual address with permission checks in both
// dimensions. Guest-dimension faults return *PageFault (delivered to the
// guest kernel); NPT-dimension faults return *NPTViolation (delivered to
// the hypervisor as an NPF VMEXIT).
func (n *Nested) hub() *telemetry.Hub {
	if n.Ctl == nil {
		return nil
	}
	return n.Ctl.Telem
}

func (n *Nested) Translate(gva uint64, access AccessType, user bool) (NestedTranslation, error) {
	if h := n.hub(); h != nil {
		h.M.NPTWalks.Inc()
	}
	if !CanonicalVA(gva) {
		return NestedTranslation{}, &PageFault{VA: gva, Access: access, Reason: NonCanonical}
	}
	tableGPA := n.GuestRoot
	var leaf PTE
	for level := Levels - 1; level >= 0; level-- {
		idx := Index(gva, level)
		pte, err := n.readGuestEntry(tableGPA, idx)
		if err != nil {
			return NestedTranslation{}, err
		}
		if !pte.Present() {
			return NestedTranslation{}, &PageFault{VA: gva, Access: access, Reason: NotPresent, Level: level}
		}
		if level == 0 {
			leaf = pte
			break
		}
		tableGPA = uint64(pte.PFN().Addr())
	}
	if user && !leaf.User() {
		return NestedTranslation{}, &PageFault{VA: gva, Access: access, Reason: UserSupervisor}
	}
	switch access {
	case Write:
		if !leaf.Writable() {
			return NestedTranslation{}, &PageFault{VA: gva, Access: access, Reason: WriteProtected}
		}
	case Execute:
		if leaf.NoExec() {
			return NestedTranslation{}, &PageFault{VA: gva, Access: access, Reason: NXViolation}
		}
	}
	gpa := uint64(leaf.PFN().Addr())
	hpa, npte, err := n.gpaToHPA(gpa, access)
	if err != nil {
		return NestedTranslation{}, err
	}
	out := NestedTranslation{
		GPA:      gpa,
		HPA:      hpa,
		GuestPTE: leaf,
		NPTE:     npte,
	}
	// C-bit priority: guest PT first, then NPT (SME via hypervisor).
	switch {
	case leaf.Encrypted():
		out.Encrypted, out.ASID = true, n.ASID
	case npte.Encrypted():
		out.Encrypted, out.ASID = true, hw.HostASID
	}
	return out, nil
}
