package core

import (
	"bytes"
	"crypto/ecdh"
	"encoding/gob"
	"errors"
	"fmt"

	"fidelius/internal/hw"
	"fidelius/internal/sev"
)

// Wire formats: guest bundles and migration snapshots travel between
// machines (the owner's trusted environment → the platform; origin →
// target), so they need stable serialisation. ECDH public keys are
// carried as their SEC1 encoding.
//
// Everything arriving through UnmarshalBinary is attacker-supplied: the
// hypervisor relays these blobs, so a malformed header must fail fast
// here rather than drive FW.ReceiveStart/ReceiveUpdate into allocating
// for a bogus page count or unwrapping a truncated key blob.

// ErrBadBundle reports a serialized bundle that fails structural
// validation before any cryptography is attempted.
var ErrBadBundle = errors.New("core: malformed bundle")

const (
	// wrappedKeyLen is AES-256-GCM(TEK || TIK): 64 plaintext bytes plus
	// the 16-byte GCM tag.
	wrappedKeyLen = 64 + 16
	// sessionNonceLen is the owner session nonce Nvm.
	sessionNonceLen = 16
	// maxBundlePages caps the guest size a bundle may claim (64 GiB of
	// 4 KiB pages) so a hostile header cannot drive huge allocations.
	maxBundlePages = 1 << 24
	// maxBundleName bounds the advertised VM name.
	maxBundleName = 256
)

func checkWrap(what string, w sev.WrappedKeys) error {
	if len(w.Ciphertext) != wrappedKeyLen {
		return fmt.Errorf("%w: %s ciphertext is %d bytes, want %d",
			ErrBadBundle, what, len(w.Ciphertext), wrappedKeyLen)
	}
	return nil
}

func checkNonce(what string, nonce []byte) error {
	if len(nonce) != sessionNonceLen {
		return fmt.Errorf("%w: %s nonce is %d bytes, want %d",
			ErrBadBundle, what, len(nonce), sessionNonceLen)
	}
	return nil
}

func checkPackets(what string, pkts []sev.Packet) error {
	for i, p := range pkts {
		if len(p.Data) != hw.PageSize {
			return fmt.Errorf("%w: %s packet %d carries %d bytes, want a full page",
				ErrBadBundle, what, i, len(p.Data))
		}
	}
	return nil
}

type guestBundleWire struct {
	Image     *sev.EncryptedImage
	Kwrap     sev.WrappedKeys
	OwnerPub  []byte
	Nonce     []byte
	DiskImage []byte
}

type migrationBundleWire struct {
	Name     string
	MemPages int
	Kwrap    sev.WrappedKeys
	Nonce    []byte
	Packets  []sev.Packet
	Mvm      sev.Measurement
}

type gekBundleWire struct {
	Image    *sev.GEKImage
	GEKWrap  sev.WrappedKeys
	OwnerPub []byte
	Nonce    []byte
}

func encodePub(pub *ecdh.PublicKey) []byte {
	if pub == nil {
		return nil
	}
	return pub.Bytes()
}

func decodePub(b []byte) (*ecdh.PublicKey, error) {
	if len(b) == 0 {
		return nil, fmt.Errorf("core: missing public key")
	}
	return ecdh.P256().NewPublicKey(b)
}

// MarshalBinary implements encoding.BinaryMarshaler for GuestBundle.
func (b *GuestBundle) MarshalBinary() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(guestBundleWire{
		Image:     b.Image,
		Kwrap:     b.Kwrap,
		OwnerPub:  encodePub(b.OwnerPub),
		Nonce:     b.Nonce,
		DiskImage: b.DiskImage,
	})
	return buf.Bytes(), err
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler for GuestBundle.
func (b *GuestBundle) UnmarshalBinary(data []byte) error {
	var w guestBundleWire
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return err
	}
	if w.Image == nil {
		return fmt.Errorf("%w: guest bundle has no image", ErrBadBundle)
	}
	if n := w.Image.NumPages(); n == 0 || n > maxBundlePages {
		return fmt.Errorf("%w: guest image claims %d pages", ErrBadBundle, n)
	}
	if err := checkPackets("guest image", w.Image.Pages); err != nil {
		return err
	}
	if err := checkWrap("guest bundle", w.Kwrap); err != nil {
		return err
	}
	if err := checkNonce("guest bundle", w.Nonce); err != nil {
		return err
	}
	pub, err := decodePub(w.OwnerPub)
	if err != nil {
		return err
	}
	*b = GuestBundle{
		Image:     w.Image,
		Kwrap:     w.Kwrap,
		OwnerPub:  pub,
		Nonce:     w.Nonce,
		DiskImage: w.DiskImage,
	}
	return nil
}

// MarshalBinary implements encoding.BinaryMarshaler for MigrationBundle.
func (b *MigrationBundle) MarshalBinary() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(migrationBundleWire{
		Name:     b.Name,
		MemPages: b.MemPages,
		Kwrap:    b.Kwrap,
		Nonce:    b.Nonce,
		Packets:  b.Packets,
		Mvm:      b.Mvm,
	})
	return buf.Bytes(), err
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler for
// MigrationBundle.
func (b *MigrationBundle) UnmarshalBinary(data []byte) error {
	var w migrationBundleWire
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return err
	}
	if len(w.Name) > maxBundleName {
		return fmt.Errorf("%w: migration bundle name is %d bytes", ErrBadBundle, len(w.Name))
	}
	if w.MemPages <= 0 || w.MemPages > maxBundlePages {
		return fmt.Errorf("%w: migration bundle claims %d pages", ErrBadBundle, w.MemPages)
	}
	if len(w.Packets) > w.MemPages {
		return fmt.Errorf("%w: migration bundle carries %d packets for a %d-page guest",
			ErrBadBundle, len(w.Packets), w.MemPages)
	}
	if err := checkPackets("migration bundle", w.Packets); err != nil {
		return err
	}
	if err := checkWrap("migration bundle", w.Kwrap); err != nil {
		return err
	}
	if err := checkNonce("migration bundle", w.Nonce); err != nil {
		return err
	}
	*b = MigrationBundle{
		Name:     w.Name,
		MemPages: w.MemPages,
		Kwrap:    w.Kwrap,
		Nonce:    w.Nonce,
		Packets:  w.Packets,
		Mvm:      w.Mvm,
	}
	return nil
}

// MarshalBinary implements encoding.BinaryMarshaler for GEKBundle.
func (b *GEKBundle) MarshalBinary() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(gekBundleWire{
		Image:    b.Image,
		GEKWrap:  b.GEKWrap,
		OwnerPub: encodePub(b.OwnerPub),
		Nonce:    b.Nonce,
	})
	return buf.Bytes(), err
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler for GEKBundle.
func (b *GEKBundle) UnmarshalBinary(data []byte) error {
	var w gekBundleWire
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return err
	}
	if w.Image == nil {
		return fmt.Errorf("%w: GEK bundle has no image", ErrBadBundle)
	}
	if n := w.Image.NumPages(); n == 0 || n > maxBundlePages {
		return fmt.Errorf("%w: GEK image claims %d pages", ErrBadBundle, n)
	}
	for i, p := range w.Image.Pages {
		if len(p) != hw.PageSize {
			return fmt.Errorf("%w: GEK image page %d is %d bytes, want a full page",
				ErrBadBundle, i, len(p))
		}
	}
	if err := checkWrap("GEK bundle", w.GEKWrap); err != nil {
		return err
	}
	if err := checkNonce("GEK bundle", w.Nonce); err != nil {
		return err
	}
	pub, err := decodePub(w.OwnerPub)
	if err != nil {
		return err
	}
	*b = GEKBundle{
		Image:    w.Image,
		GEKWrap:  w.GEKWrap,
		OwnerPub: pub,
		Nonce:    w.Nonce,
	}
	return nil
}
