package core

import (
	"bytes"
	"errors"
	"testing"

	"fidelius/internal/disk"
	"fidelius/internal/hw"
	"fidelius/internal/sev"
	"fidelius/internal/xen"
)

// The Section 8 extensions: hardware integrity (BMT) and customized keys
// (SETENC_GEK / ENC / DEC).

func TestIntegrityDetectsRowhammer(t *testing.T) {
	x, f := newPlatform(t)
	b, _ := newBundle(t, f, make([]byte, hw.PageSize), nil)
	d, err := f.LaunchVM("bmt", 32, b)
	if err != nil {
		t.Fatal(err)
	}
	// Guest writes data, then integrity is enabled.
	x.StartVCPU(d, func(g *xen.GuestEnv) error {
		return g.Write(0x5000, []byte("integrity-protected data"))
	})
	if err := x.Run(d); err != nil {
		t.Fatal(err)
	}
	if err := f.EnableIntegrity(d); err != nil {
		t.Fatal(err)
	}
	root1, ok := f.IntegrityRoot()
	if !ok || root1 == ([32]byte{}) {
		t.Fatal("no integrity root")
	}

	// Without the attack, the guest keeps working (updates re-hash).
	x.StartVCPU(d, func(g *xen.GuestEnv) error {
		if err := g.Write(0x5000, []byte("updated contents....")); err != nil {
			return err
		}
		buf := make([]byte, 20)
		return g.Read(0x5000, buf)
	})
	if err := x.Run(d); err != nil {
		t.Fatalf("benign writes must keep verifying: %v", err)
	}
	root2, _ := f.IntegrityRoot()
	if root1 == root2 {
		t.Fatal("root did not change after a legitimate update")
	}

	// Rowhammer: with plain SEV the flip silently scrambles a block;
	// with the BMT it is *detected* at the next read.
	pfn, _ := d.GPAFrame(5)
	if err := x.M.Ctl.Mem.FlipBit(pfn.Addr()+8, 3); err != nil {
		t.Fatal(err)
	}
	x.M.Ctl.Cache.Flush()
	var readErr error
	x.StartVCPU(d, func(g *xen.GuestEnv) error {
		readErr = g.Read(0x5000, make([]byte, 20))
		return nil
	})
	if err := x.Run(d); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(readErr, hw.ErrIntegrity) {
		t.Fatalf("rowhammer flip not detected: %v", readErr)
	}
}

func TestIntegrityDetectsDMAOverwrite(t *testing.T) {
	x, f := newPlatform(t)
	b, _ := newBundle(t, f, make([]byte, hw.PageSize), nil)
	d, err := f.LaunchVM("bmt2", 32, b)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.EnableIntegrity(d); err != nil {
		t.Fatal(err)
	}
	pfn, _ := d.GPAFrame(7)
	// A malicious device DMAs garbage over the protected page.
	if err := x.M.Ctl.DMA().Write(pfn.Addr(), bytes.Repeat([]byte{0xEE}, 64)); err != nil {
		t.Fatal(err)
	}
	var readErr error
	x.StartVCPU(d, func(g *xen.GuestEnv) error {
		readErr = g.Read(7<<hw.PageShift, make([]byte, 16))
		return nil
	})
	if err := x.Run(d); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(readErr, hw.ErrIntegrity) {
		t.Fatalf("DMA overwrite not detected: %v", readErr)
	}
}

func TestGEKPortableImageBootsOnTwoPlatforms(t *testing.T) {
	// The image is prepared ONCE, with no platform key in sight...
	owner, err := sev.NewOwner()
	if err != nil {
		t.Fatal(err)
	}
	kernel := bytes.Repeat([]byte("PORTABLE-KERNEL!"), 256)
	img, gek, err := PrepareGEKGuest(owner, kernel)
	if err != nil {
		t.Fatal(err)
	}

	// ...and deployed to two independent platforms by wrapping the GEK
	// for each at deployment time — impossible with the stock SEND API,
	// which binds the image to one machine during preparation.
	for i := 0; i < 2; i++ {
		x, f := newPlatform(t)
		pub, err := f.M.FW.PublicKey()
		if err != nil {
			t.Fatal(err)
		}
		bundle, err := BindGEKGuest(owner, pub, img, gek)
		if err != nil {
			t.Fatal(err)
		}
		d, err := f.LaunchVMFromGEK("portable", 48, bundle)
		if err != nil {
			t.Fatal(err)
		}
		kbase := uint64(d.MemPages-img.NumPages()) << hw.PageShift
		got := make([]byte, 16)
		x.StartVCPU(d, func(g *xen.GuestEnv) error {
			return g.Read(kbase, got)
		})
		if err := x.Run(d); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, []byte("PORTABLE-KERNEL!")) {
			t.Fatalf("platform %d: kernel mismatch: %q", i, got)
		}
		// DRAM holds Kvek ciphertext, not GEK ciphertext or plaintext.
		pfn, _ := d.GPAFrame(uint64(d.MemPages - img.NumPages()))
		raw := make([]byte, 16)
		x.M.Ctl.Mem.ReadRaw(pfn.Addr(), raw)
		if bytes.Equal(raw, []byte("PORTABLE-KERNEL!")) || bytes.Equal(raw, img.Pages[0][:16]) {
			t.Fatal("kernel not re-encrypted under Kvek")
		}
	}
}

func TestGEKWrongPlatformCannotUnwrap(t *testing.T) {
	owner, _ := sev.NewOwner()
	img, gek, err := PrepareGEKGuest(owner, make([]byte, hw.PageSize))
	if err != nil {
		t.Fatal(err)
	}
	_, f1 := newPlatform(t)
	_, f2 := newPlatform(t)
	pub1, _ := f1.M.FW.PublicKey()
	bundle, err := BindGEKGuest(owner, pub1, img, gek)
	if err != nil {
		t.Fatal(err)
	}
	// Platform 2 presenting platform 1's bundle fails the unwrap.
	if _, err := f2.LaunchVMFromGEK("stolen", 32, bundle); err == nil {
		t.Fatal("bundle bound to platform 1 booted on platform 2")
	}
}

func TestGEKIOPathWithoutHelperContexts(t *testing.T) {
	x, f := newPlatform(t)
	owner, _ := sev.NewOwner()
	img, gek, err := PrepareGEKGuest(owner, make([]byte, hw.PageSize))
	if err != nil {
		t.Fatal(err)
	}
	pub, _ := f.M.FW.PublicKey()
	bundle, err := BindGEKGuest(owner, pub, img, gek)
	if err != nil {
		t.Fatal(err)
	}
	d, err := f.LaunchVMFromGEK("gekio", 64, bundle)
	if err != nil {
		t.Fatal(err)
	}
	// NO SetupIOSession: the guest's own context serves ENC/DEC.
	dk := disk.New(128)
	backend, err := f.AttachProtectedDisk(d, dk, 2, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	backend.SnoopEnabled = true
	if err := x.WriteStartInfo(d); err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("GEK-IO-PAYLOAD!!"), disk.SectorSize/16*2)
	x.StartVCPU(d, func(g *xen.GuestEnv) error {
		bf, err := xen.NewBlockFrontend(g)
		if err != nil {
			return err
		}
		front := NewSEVFront(g, bf) // same guest driver, new firmware path
		if err := front.WriteSectors(9, payload); err != nil {
			return err
		}
		got := make([]byte, len(payload))
		if err := front.ReadSectors(9, got); err != nil {
			return err
		}
		if !bytes.Equal(got, payload) {
			t.Error("GEK I/O round trip mismatch")
		}
		return nil
	})
	if err := x.Run(d); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(backend.Snoop, []byte("GEK-IO-PAYLOAD!!")) {
		t.Fatal("backend observed plaintext on the GEK I/O path")
	}
	st, _ := f.VM(d)
	if st.IOSessionReady {
		t.Fatal("GEK path should not have created helper contexts")
	}
}

func TestGEKFirmwareStateMachine(t *testing.T) {
	x, f := newPlatform(t)
	_ = x
	defer f.enterTrusted()()
	h, err := f.M.FW.LaunchStart(0)
	if err != nil {
		t.Fatal(err)
	}
	// ENC/DEC before SETENC_GEK fail.
	if _, err := f.M.FW.Enc(h, 0x1000, 16, 0); !errors.Is(err, sev.ErrNoGEK) {
		t.Fatalf("want ErrNoGEK, got %v", err)
	}
	if err := f.M.FW.Dec(h, 0x1000, make([]byte, 16), 0); !errors.Is(err, sev.ErrNoGEK) {
		t.Fatalf("want ErrNoGEK, got %v", err)
	}
	// Alignment checks hold.
	owner, _ := sev.NewOwner()
	pub, _ := f.M.FW.PublicKey()
	var gek sev.GEK
	gek[0] = 1
	wrap, err := owner.WrapGEK(pub, gek)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.M.FW.SetEncGEK(h, wrap, owner.PublicKey(), owner.Nonce()); err != nil {
		t.Fatal(err)
	}
	if _, err := f.M.FW.Enc(h, 0x1001, 16, 0); !errors.Is(err, sev.ErrNotAligned) {
		t.Fatalf("want ErrNotAligned, got %v", err)
	}
	if err := f.M.FW.DecPage(h, 2, make([]byte, 100), 0); err == nil {
		t.Fatal("short DecPage should fail")
	}
}
