package xsa

import (
	"strings"
	"testing"
)

func TestCorpusSize(t *testing.T) {
	c := Corpus()
	if len(c) != TotalAdvisories {
		t.Fatalf("corpus has %d advisories, want %d", len(c), TotalAdvisories)
	}
	seen := map[int]bool{}
	for _, a := range c {
		if a.ID < 1 || a.ID > TotalAdvisories {
			t.Fatalf("advisory ID %d out of range", a.ID)
		}
		if seen[a.ID] {
			t.Fatalf("duplicate advisory ID %d", a.ID)
		}
		seen[a.ID] = true
	}
}

func TestXSAQuantitative(t *testing.T) {
	// E7: the Section 6.2 numbers.
	r := Analyze(Corpus())
	if r.Total != 235 {
		t.Errorf("total = %d, want 235", r.Total)
	}
	if r.Hypervisor != 177 {
		t.Errorf("hypervisor = %d, want 177", r.Hypervisor)
	}
	if r.QEMU != 58 {
		t.Errorf("qemu = %d, want 58", r.QEMU)
	}
	if r.ThwartedPrivEsc != 31 {
		t.Errorf("thwarted priv esc = %d, want 31", r.ThwartedPrivEsc)
	}
	if r.ThwartedInfoLeak != 22 {
		t.Errorf("thwarted info leak = %d, want 22", r.ThwartedInfoLeak)
	}
	if r.GuestFlaws != 14 {
		t.Errorf("guest flaws = %d, want 14", r.GuestFlaws)
	}
	if r.Thwarted() != 53 {
		t.Errorf("thwarted total = %d, want 53", r.Thwarted())
	}
	// Percentages as printed in the paper: 17.5% and 12.4%.
	if got := r.Pct(r.ThwartedPrivEsc); got < 17.4 || got > 17.6 {
		t.Errorf("priv esc pct = %.2f, want ~17.5", got)
	}
	if got := r.Pct(r.ThwartedInfoLeak); got < 12.3 || got > 12.5 {
		t.Errorf("info leak pct = %.2f, want ~12.4", got)
	}
}

func TestThwartedSemantics(t *testing.T) {
	if !(Advisory{Component: Hypervisor, Class: PrivilegeEscalation}).Thwarted() {
		t.Error("hypervisor privilege escalation should be thwarted")
	}
	if !(Advisory{Component: Hypervisor, Class: InfoLeak}).Thwarted() {
		t.Error("hypervisor info leak should be thwarted")
	}
	if (Advisory{Component: Hypervisor, Class: DoS}).Thwarted() {
		t.Error("DoS is out of scope")
	}
	if (Advisory{Component: QEMU, Class: PrivilegeEscalation}).Thwarted() {
		t.Error("QEMU advisories are out of scope")
	}
	if (Advisory{Component: Hypervisor, Class: GuestInternal}).Thwarted() {
		t.Error("guest-internal flaws are out of scope")
	}
}

func TestThwartedHaveMechanisms(t *testing.T) {
	for _, a := range Corpus() {
		if a.Thwarted() && a.Mechanism == "" {
			t.Fatalf("XSA-%d thwarted but lacks a mechanism", a.ID)
		}
		if !a.Thwarted() && a.Mechanism != "" {
			t.Fatalf("XSA-%d not thwarted but credits a mechanism", a.ID)
		}
	}
}

func TestReportString(t *testing.T) {
	s := Analyze(Corpus()).String()
	for _, want := range []string{"235", "177", "17.5%", "12.4%"} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q:\n%s", want, s)
		}
	}
}

func TestStringers(t *testing.T) {
	if Hypervisor.String() != "hypervisor" || QEMU.String() != "qemu" {
		t.Error("component names")
	}
	for c, want := range map[Class]string{
		PrivilegeEscalation: "privilege escalation",
		InfoLeak:            "information leakage",
		GuestInternal:       "guest-internal flaw",
		DoS:                 "denial of service",
	} {
		if c.String() != want {
			t.Errorf("%d.String() = %q", int(c), c.String())
		}
	}
}
