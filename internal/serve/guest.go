package serve

import (
	"errors"
	"fmt"

	"fidelius/internal/core"
	"fidelius/internal/cycles"
	"fidelius/internal/hw"
	"fidelius/internal/kv"
	"fidelius/internal/xen"
)

// storeLBA is where the kv log region starts on each tenant disk.
const storeLBA = 8

// Guest compaction policy: between doorbell batches the guest compacts
// once at least compactGarbageFrac of the log is dead records and the
// log has grown past half of a half's capacity (compacting a short log
// reclaims little and still pays the rewrite).
const compactGarbageFrac = 0.5

// stagedResp is one response held back until the batch's group commit
// decides its final status.
type stagedResp struct {
	id     uint64
	op     uint32
	status uint32
	val    []byte
	muted  bool // true when the op rode the batch's kv.Apply
}

// overlayVal is the batch-local view of a key mutated earlier in the
// same batch: gets must observe it (client sessions are FIFO, so a get
// injected after a put of the same key expects the new value) even
// though the store index is only updated at the group commit.
type overlayVal struct {
	val  []byte
	dead bool
}

// guestMain is the tenant VM's kernel: it opens the kv store over the
// protected block path (Kblk read from its own encrypted kernel image),
// then serves ring batches until the front door posts the stop flag.
//
// The loop is a doorbell poll: kicking the doorbell port traps to the
// host, which fills request frames *while the vCPU is parked in the
// VMEXIT*; on resume the guest reads the whole batch, stages every
// put/delete into one kv group commit, answers gets against the staged
// overlay (preserving per-client FIFO semantics), applies the commit,
// posts all responses and kicks the completion port. An empty batch
// without the stop flag halts for a quantum — burning simulated cycles,
// which is exactly how open-loop arrivals become due.
//
// The block device is wrapped in a write coalescer, so the group
// commit's record span reaches blkio.go as one sequential request: a
// batch of N mutations costs two disk writes (terminator + span) and at
// most two seeks, where the old per-op path paid 2N of each.
//
// Two maintenance mechanisms ride the batch loop. A read cache holds
// the session-*encrypted* bytes of hot values, so a repeated get skips
// both the index copy and the session-cipher recharge; entries are
// invalidated when a mutation on the key is staged and repopulated only
// from committed store state, never from in-flight request bytes — a
// failed commit therefore cannot plant a stale entry. And between
// batches the guest compacts the log once the garbage ratio crosses
// compactGarbageFrac (or immediately, when a commit reports ErrFull),
// so a long-lived tenant's write volume can exceed the store region
// without ever surfacing "store full" to its clients.
func (s *Service) guestMain(t *tenant) xen.GuestFunc {
	kbase := t.kbase
	sectors := s.cfg.StoreSectors
	cacheCap := s.cfg.ReadCacheEntries
	hub := s.hub()
	return func(g *xen.GuestEnv) error {
		bf, err := xen.NewBlockFrontend(g)
		if err != nil {
			return err
		}
		var kblk [32]byte
		if err := g.Read(kbase+core.KblkOffset, kblk[:]); err != nil {
			return err
		}
		aes, err := core.NewAESNIFront(g, bf, kblk)
		if err != nil {
			return err
		}
		dev := kv.NewWriteCoalescer(aes, 0)
		if err := kv.FormatCompactable(dev, storeLBA, sectors); err != nil {
			return err
		}
		store, err := kv.Open(dev, storeLBA, sectors)
		if err != nil {
			return err
		}
		var cache *kv.ValueCache
		if cacheCap > 0 {
			cache = kv.NewValueCache(cacheCap)
		}

		frames := int(g.Info.ServeFrames)
		if frames <= 0 {
			frames = LegacyRingFrames
		}
		reqGPA := g.Info.ServeGFN << hw.PageShift
		respGPA := reqGPA + uint64(ringPagesPerDir(frames))*hw.PageSize
		doorbell := uint64(g.Info.ServePort)
		completion := doorbell + 1

		var sessionKey [32]byte
		haveKey := false
		var ctl, frame, out [SectorSize]byte
		resps := make([]stagedResp, 0, frames)
		muts := make([]kv.Op, 0, frames)
		overlay := make(map[string]overlayVal, frames)
		// Last published telemetry baselines: the guest exports deltas
		// after every batch so host-side dashboards track it live.
		var pubCoal kv.CoalesceStats
		var pubStore kv.StoreStats
		var pubHits, pubMisses uint64
		served := 0
		publish := func() {
			st := dev.Stats()
			hub.M.KVSeqWrites.Add(st.SeqWrites - pubCoal.SeqWrites)
			hub.M.KVGroupCommits.Add(st.GroupCommits - pubCoal.GroupCommits)
			pubCoal = st
			ss := store.Stats()
			hub.M.KVCompactions.Add(ss.Compactions - pubStore.Compactions)
			hub.M.KVReclaimed.Add(ss.ReclaimedSectors - pubStore.ReclaimedSectors)
			pubStore = ss
			if cache != nil {
				h, m := cache.Stats()
				hub.M.KVCacheHits.Add(h - pubHits)
				hub.M.KVCacheMisses.Add(m - pubMisses)
				pubHits, pubMisses = h, m
			}
		}
		for {
			if _, err := g.Hypercall(xen.HCEventChannelOp, xen.EvtOpSend, doorbell); err != nil {
				return err
			}
			if err := g.ReadUnencrypted(reqGPA, ctl[:]); err != nil {
				return err
			}
			count, flags, err := decodeReqCtl(ctl[:])
			if err != nil {
				return err
			}
			if count > uint32(frames) {
				return fmt.Errorf("serve: host posted %d requests", count)
			}
			if count == 0 {
				if flags&FlagStop != 0 {
					return g.ConsolePrint(fmt.Sprintf("served %d ops", served))
				}
				g.Halt()
				continue
			}
			// Pass 1: decode the batch, stage mutations, answer gets from
			// the overlay-over-store view (the cache under that).
			resps = resps[:0]
			muts = muts[:0]
			for k := range overlay {
				delete(overlay, k)
			}
			for i := uint32(0); i < count; i++ {
				if err := g.ReadUnencrypted(reqGPA+uint64((i+1)*SectorSize), frame[:]); err != nil {
					return err
				}
				id, op, key, val, err := decodeRequest(frame[:])
				if err != nil {
					return err
				}
				r := stagedResp{id: id, op: op, status: StatusError}
				switch op {
				case OpInstallKey:
					if len(val) == 32 {
						copy(sessionKey[:], val)
						haveKey = true
						r.status = StatusOK
					}
				case OpPut:
					if haveKey {
						chargeSessionCipher(g, len(val))
						xorSession(sessionKey, key, val)
						muts = append(muts, kv.Op{Key: key, Value: val})
						overlay[key] = overlayVal{val: val}
						if cache != nil {
							cache.Invalidate(key)
						}
						r.status, r.muted = StatusOK, true
					}
				case OpDelete:
					if haveKey {
						muts = append(muts, kv.Op{Key: key, Delete: true})
						overlay[key] = overlayVal{dead: true}
						if cache != nil {
							cache.Invalidate(key)
						}
						r.status, r.muted = StatusOK, true
					}
				case OpGet:
					if haveKey {
						r.status, r.val = execGet(g, store, cache, overlay, sessionKey, key)
					}
				}
				resps = append(resps, r)
			}
			// Pass 2: one group commit for the whole batch. A full log gets
			// one compact-and-retry — the region may be mostly dead
			// records. On (final) failure the staged mutations report
			// errors: nothing was applied to the index, and the store
			// sealed the failed span out of the log.
			if len(muts) > 0 {
				err := store.Apply(muts)
				if errors.Is(err, kv.ErrFull) {
					if cerr := store.Compact(); cerr == nil {
						err = store.Apply(muts)
					}
				}
				if err != nil {
					for i := range resps {
						if resps[i].muted {
							resps[i].status = StatusError
						}
					}
				}
			}
			// Pass 3: post the responses. served mirrors the host's
			// serve.ops accounting — real ops that completed with a
			// definitive answer; key installs and errored ops don't count.
			for i, r := range resps {
				if r.op != OpInstallKey && (r.status == StatusOK || r.status == StatusNotFound) {
					served++
				}
				if err := encodeResponse(out[:], r.id, r.status, r.val); err != nil {
					return err
				}
				if err := g.WriteUnencrypted(respGPA+uint64((i+1)*SectorSize), out[:]); err != nil {
					return err
				}
			}
			encodeRespCtl(out[:], count)
			if err := g.WriteUnencrypted(respGPA, out[:]); err != nil {
				return err
			}
			if _, err := g.Hypercall(xen.HCEventChannelOp, xen.EvtOpSend, completion); err != nil {
				return err
			}
			// Between batches: reclaim dead log space before asking for
			// more work. Compaction never changes a key's value, so the
			// read cache stays coherent across it.
			if store.NeedsCompact(compactGarbageFrac) && store.UsedSectors() >= store.HalfSectors()/2 {
				if err := store.Compact(); err != nil && !errors.Is(err, kv.ErrFull) {
					return err
				}
			}
			publish()
		}
	}
}

// execGet answers one get against the batch overlay first, then the
// read cache, then the store. Values cross the (hypervisor-visible)
// ring encrypted under the session key; a cache hit returns the
// already-encrypted bytes without recharging the cipher, and the
// session-cipher work on misses is charged at AES-NI hardware cost,
// like the disk path's.
func execGet(g *xen.GuestEnv, store *kv.Store, cache *kv.ValueCache, overlay map[string]overlayVal, sessionKey [32]byte, key string) (uint32, []byte) {
	if o, ok := overlay[key]; ok {
		if o.dead {
			return StatusNotFound, nil
		}
		// Mutated earlier in this batch: encrypt the staged value. Not
		// cached — the commit may still fail.
		v := append([]byte{}, o.val...)
		chargeSessionCipher(g, len(v))
		xorSession(sessionKey, key, v)
		return StatusOK, v
	}
	if cache != nil {
		if ct, ok := cache.Get(key); ok {
			return StatusOK, ct
		}
	}
	view, err := store.GetView(key)
	if errors.Is(err, kv.ErrNotFound) {
		return StatusNotFound, nil
	}
	if err != nil {
		return StatusError, nil
	}
	ct := append([]byte{}, view...)
	chargeSessionCipher(g, len(ct))
	xorSession(sessionKey, key, ct)
	if cache != nil {
		cache.Put(key, ct)
	}
	return StatusOK, ct
}

// chargeSessionCipher accounts the session-key crypto on the cycle clock.
func chargeSessionCipher(g *xen.GuestEnv, n int) {
	blocks := uint64((n + 15) / 16)
	if blocks == 0 {
		blocks = 1
	}
	g.Charge(blocks * cycles.AESBlockHW)
}
