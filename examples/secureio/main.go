// Secure I/O: the two para-virtualized I/O protection paths of the paper
// (Section 4.3.5) side by side, with a snooping driver domain on the I/O
// path demonstrating what each configuration leaks.
//
// Run with: go run ./examples/secureio
package main

import (
	"bytes"
	"fmt"
	"log"

	"fidelius"
)

const payloadTag = "CONFIDENTIAL-DB!"

func runConfig(name string, protected bool, useSEVPath bool) {
	plat, err := fidelius.NewPlatform(fidelius.Config{Protected: protected})
	if err != nil {
		log.Fatal(err)
	}
	owner, _ := fidelius.NewOwner()
	diskImage := bytes.Repeat([]byte("preloaded-data.."), 64)
	bundle, _, err := fidelius.PrepareGuest(owner, plat.PlatformKey(), nil, diskImage)
	if err != nil {
		log.Fatal(err)
	}

	var vm *fidelius.Domain
	if protected {
		if vm, err = plat.LaunchVM(name, 64, bundle); err != nil {
			log.Fatal(err)
		}
		if useSEVPath {
			if err := plat.SetupIOSession(vm); err != nil {
				log.Fatal(err)
			}
		}
	} else {
		if vm, err = plat.CreateVM(name, 64, true); err != nil {
			log.Fatal(err)
		}
	}

	dk := fidelius.NewDisk(256)
	var attach *fidelius.GuestBundle
	if protected && !useSEVPath {
		attach = bundle // preload the Kblk-encrypted image
	}
	backend, err := plat.AttachDisk(vm, dk, 2, 1, attach)
	if err != nil {
		log.Fatal(err)
	}
	backend.SnoopEnabled = true

	kbase := plat.KernelBase(vm, bundle) * fidelius.PageSize
	payload := bytes.Repeat([]byte(payloadTag), fidelius.SectorSize/16*2)
	plat.StartVCPU(vm, func(g *fidelius.GuestEnv) error {
		bf, err := fidelius.NewBlockFrontend(g)
		if err != nil {
			return err
		}
		var dev interface {
			WriteSectors(lba uint64, data []byte) error
			ReadSectors(lba uint64, buf []byte) error
		}
		switch {
		case !protected:
			dev = bf
		case useSEVPath:
			dev = fidelius.NewSEVFront(g, bf)
		default:
			var kblk [32]byte
			if err := g.Read(kbase+fidelius.KblkOffset, kblk[:]); err != nil {
				return err
			}
			if dev, err = fidelius.NewAESNIFront(g, bf, kblk); err != nil {
				return err
			}
		}
		if err := dev.WriteSectors(100, payload); err != nil {
			return err
		}
		back := make([]byte, len(payload))
		if err := dev.ReadSectors(100, back); err != nil {
			return err
		}
		if !bytes.Equal(back, payload) {
			return fmt.Errorf("round trip mismatch")
		}
		return nil
	})
	if err := plat.Run(vm); err != nil {
		log.Fatal(err)
	}

	ringLeak := bytes.Contains(backend.Snoop, []byte(payloadTag))
	diskLeak := bytes.Contains(dk.Snapshot(), []byte(payloadTag))
	fmt.Printf("%-22s driver-domain sees plaintext: %-5v  disk holds plaintext: %v\n",
		name+":", ringLeak, diskLeak)
}

func main() {
	fmt.Println("Disk I/O privacy across configurations (paper §4.3.5, Table 3 workload path):")
	runConfig("xen-baseline", false, false)
	runConfig("fidelius-aesni", true, false)
	runConfig("fidelius-sev-api", true, true)
	fmt.Println("\nBoth protected paths keep the driver domain and the physical disk blind;")
	fmt.Println("the AES-NI path uses the guest's Kblk, the SEV path the firmware's s-dom/r-dom contexts.")
}
