package mmu

import (
	"fidelius/internal/hw"
	"fidelius/internal/telemetry"
)

type tlbKey struct {
	asid   hw.ASID
	vaPage uint64
	access AccessType
}

// TLB caches permission-checked translations, tagged by ASID so that guest
// and host entries coexist (AMD-V tagged TLBs). Fidelius's gate-cost
// analysis revolves around what each context-transition approach flushes:
// a CR3 switch flushes everything, the type 3 gate flushes single entries,
// the type 1 gate flushes nothing.
type TLB struct {
	entries map[tlbKey]Translation

	// One-entry last-translation cache in front of the map: straight-line
	// guest code re-translates the same page with the same access type
	// for every load/store, so the common Lookup is a key compare, not a
	// map probe (the micro-TLB in front of a real walker).
	lastKey tlbKey
	lastTr  Translation
	lastOK  bool

	// Flush and lookup statistics, used by the micro-benchmarks and
	// served through the telemetry registry as reader funcs.
	FullFlushes  uint64
	EntryFlushes uint64
	Hits         uint64
	Misses       uint64

	// Hub, when set (wired by cpu.New), receives flush trace events.
	Hub *telemetry.Hub
}

// NewTLB returns an empty TLB.
func NewTLB() *TLB {
	return &TLB{entries: make(map[tlbKey]Translation)}
}

// Lookup returns a cached translation for (asid, va, access).
func (t *TLB) Lookup(asid hw.ASID, va uint64, access AccessType) (Translation, bool) {
	k := tlbKey{asid, PageBase(va), access}
	if t.lastOK && t.lastKey == k {
		t.Hits++
		return t.lastTr, true
	}
	tr, ok := t.entries[k]
	if ok {
		t.Hits++
		t.lastKey, t.lastTr, t.lastOK = k, tr, true
	} else {
		t.Misses++
	}
	return tr, ok
}

// Insert caches a translation.
func (t *TLB) Insert(asid hw.ASID, va uint64, access AccessType, tr Translation) {
	k := tlbKey{asid, PageBase(va), access}
	t.entries[k] = tr
	t.lastKey, t.lastTr, t.lastOK = k, tr, true
}

// FlushAll empties the TLB (MOV CR3 without PCID, or explicit full flush).
func (t *TLB) FlushAll() {
	t.entries = make(map[tlbKey]Translation)
	t.lastOK = false
	t.FullFlushes++
	if t.Hub.Tracing() {
		t.Hub.Emit(telemetry.KindTLBFlushFull, 0, 0, 0, 0, 0)
	}
}

// FlushEntry drops all cached translations of one page for one ASID
// (INVLPG / INVLPGA).
func (t *TLB) FlushEntry(asid hw.ASID, va uint64) {
	base := PageBase(va)
	for _, a := range []AccessType{Read, Write, Execute} {
		delete(t.entries, tlbKey{asid, base, a})
	}
	if t.lastOK && t.lastKey.asid == asid && t.lastKey.vaPage == base {
		t.lastOK = false
	}
	t.EntryFlushes++
	if t.Hub.Tracing() {
		t.Hub.Emit(telemetry.KindTLBFlushEntry,
			t.Hub.VMForASID(uint32(asid)), uint32(asid), 0, va, 0)
	}
}

// FlushASID drops every entry of one ASID.
func (t *TLB) FlushASID(asid hw.ASID) {
	for k := range t.entries {
		if k.asid == asid {
			delete(t.entries, k)
		}
	}
	if t.lastOK && t.lastKey.asid == asid {
		t.lastOK = false
	}
}

// Len reports the number of cached translations.
func (t *TLB) Len() int { return len(t.entries) }

// Register publishes the TLB's statistics on the hub's registry and wires
// the hub for flush events.
func (t *TLB) Register(h *telemetry.Hub) {
	t.Hub = h
	if h == nil {
		return
	}
	h.Reg.RegisterFunc("tlb.hits", func() uint64 { return t.Hits })
	h.Reg.RegisterFunc("tlb.misses", func() uint64 { return t.Misses })
	h.Reg.RegisterFunc("tlb.full_flushes", func() uint64 { return t.FullFlushes })
	h.Reg.RegisterFunc("tlb.entry_flushes", func() uint64 { return t.EntryFlushes })
	h.Reg.RegisterFunc("tlb.entries", func() uint64 { return uint64(len(t.entries)) })
}
