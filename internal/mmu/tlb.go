package mmu

import (
	"sync"

	"fidelius/internal/hw"
	"fidelius/internal/telemetry"
)

type tlbKey struct {
	asid   hw.ASID
	vaPage uint64
	access AccessType
}

// TLB caches permission-checked translations, tagged by ASID so that guest
// and host entries coexist (AMD-V tagged TLBs). Fidelius's gate-cost
// analysis revolves around what each context-transition approach flushes:
// a CR3 switch flushes everything, the type 3 gate flushes single entries,
// the type 1 gate flushes nothing.
//
// A TLB belongs to one core, but invalidations arrive from other cores via
// the ShootdownBus, so every operation takes the internal mutex — a leaf
// lock, never held across calls into other subsystems.
type TLB struct {
	mu      sync.Mutex
	entries map[tlbKey]Translation

	// One-entry last-translation cache in front of the map: straight-line
	// guest code re-translates the same page with the same access type
	// for every load/store, so the common Lookup is a key compare, not a
	// map probe (the micro-TLB in front of a real walker).
	lastKey tlbKey
	lastTr  Translation
	lastOK  bool

	// Flush and lookup statistics, used by the micro-benchmarks and
	// served through the telemetry registry as reader funcs. Mutated
	// under mu.
	FullFlushes  uint64
	EntryFlushes uint64
	ASIDFlushes  uint64
	Hits         uint64
	Misses       uint64

	// Hub, when set (wired by cpu.New), receives flush trace events.
	Hub *telemetry.Hub
}

// NewTLB returns an empty TLB.
func NewTLB() *TLB {
	return &TLB{entries: make(map[tlbKey]Translation)}
}

// Lookup returns a cached translation for (asid, va, access).
func (t *TLB) Lookup(asid hw.ASID, va uint64, access AccessType) (Translation, bool) {
	k := tlbKey{asid, PageBase(va), access}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.lastOK && t.lastKey == k {
		t.Hits++
		return t.lastTr, true
	}
	tr, ok := t.entries[k]
	if ok {
		t.Hits++
		t.lastKey, t.lastTr, t.lastOK = k, tr, true
	} else {
		t.Misses++
	}
	return tr, ok
}

// Insert caches a translation.
func (t *TLB) Insert(asid hw.ASID, va uint64, access AccessType, tr Translation) {
	k := tlbKey{asid, PageBase(va), access}
	t.mu.Lock()
	t.entries[k] = tr
	t.lastKey, t.lastTr, t.lastOK = k, tr, true
	t.mu.Unlock()
}

// FlushAll empties the TLB (MOV CR3 without PCID, or explicit full flush).
func (t *TLB) FlushAll() {
	t.mu.Lock()
	t.entries = make(map[tlbKey]Translation)
	t.lastOK = false
	t.FullFlushes++
	t.mu.Unlock()
	if t.Hub.Tracing() {
		t.Hub.Emit(telemetry.KindTLBFlushFull, 0, 0, 0, 0, 0)
	}
}

// FlushEntry drops all cached translations of one page for one ASID
// (INVLPG / INVLPGA).
func (t *TLB) FlushEntry(asid hw.ASID, va uint64) {
	base := PageBase(va)
	t.mu.Lock()
	for _, a := range []AccessType{Read, Write, Execute} {
		delete(t.entries, tlbKey{asid, base, a})
	}
	if t.lastOK && t.lastKey.asid == asid && t.lastKey.vaPage == base {
		t.lastOK = false
	}
	t.EntryFlushes++
	t.mu.Unlock()
	if t.Hub.Tracing() {
		t.Hub.Emit(telemetry.KindTLBFlushEntry,
			t.Hub.VMForASID(uint32(asid)), uint32(asid), 0, va, 0)
	}
}

// FlushASID drops every entry of one ASID (the INVLPGA sweep a VMRUN with
// a flush-by-ASID control performs). Each dropped entry counts as an entry
// flush — the same accounting a loop of FlushEntry calls would produce —
// and the sweep itself is counted and traced, so gate-cost analysis sees
// ASID-wide invalidations instead of silently missing them.
func (t *TLB) FlushASID(asid hw.ASID) {
	t.mu.Lock()
	removed := uint64(0)
	for k := range t.entries {
		if k.asid == asid {
			delete(t.entries, k)
			removed++
		}
	}
	if t.lastOK && t.lastKey.asid == asid {
		t.lastOK = false
	}
	t.EntryFlushes += removed
	t.ASIDFlushes++
	t.mu.Unlock()
	if t.Hub.Tracing() {
		t.Hub.Emit(telemetry.KindTLBFlushASID,
			t.Hub.VMForASID(uint32(asid)), uint32(asid), 0, removed, 0)
	}
}

// Len reports the number of cached translations.
func (t *TLB) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.entries)
}

// Register publishes the TLB's statistics on the hub's registry and wires
// the hub for flush events.
func (t *TLB) Register(h *telemetry.Hub) {
	t.Hub = h
	if h == nil {
		return
	}
	read := func(f func() uint64) func() uint64 {
		return func() uint64 {
			t.mu.Lock()
			defer t.mu.Unlock()
			return f()
		}
	}
	h.Reg.RegisterFunc("tlb.hits", read(func() uint64 { return t.Hits }))
	h.Reg.RegisterFunc("tlb.misses", read(func() uint64 { return t.Misses }))
	h.Reg.RegisterFunc("tlb.full_flushes", read(func() uint64 { return t.FullFlushes }))
	h.Reg.RegisterFunc("tlb.entry_flushes", read(func() uint64 { return t.EntryFlushes }))
	h.Reg.RegisterFunc("tlb.asid_flushes", read(func() uint64 { return t.ASIDFlushes }))
	h.Reg.RegisterFunc("tlb.entries", read(func() uint64 { return uint64(len(t.entries)) }))
}
