// benchtab regenerates the paper's evaluation artifacts (Section 7) on
// the simulated platform: Figure 5 (SPEC CPU 2006), Figure 6 (PARSEC),
// Table 3 (fio), and the three micro-benchmarks of Section 7.2.
//
// Usage:
//
//	benchtab [-fig5] [-fig6] [-table3] [-micro] [-migration] [-slo] [-serve] [-iters N] [-sectors N]
//
// With no flags, everything runs. -slo evaluates the stock latency
// service-level objectives against a protected SPEC run and prints the
// pass/fail table. -serve sweeps the multi-tenant KV serving front end
// across open-loop offered rates.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"fidelius/internal/bench"
	"fidelius/internal/telemetry"
)

func main() {
	fig5 := flag.Bool("fig5", false, "run Figure 5 (SPEC CPU 2006 overheads)")
	fig6 := flag.Bool("fig6", false, "run Figure 6 (PARSEC overheads)")
	table3 := flag.Bool("table3", false, "run Table 3 (fio)")
	micro := flag.Bool("micro", false, "run the Section 7.2 micro-benchmarks")
	ablation := flag.Bool("ablation", false, "run the design-choice ablations")
	migration := flag.Bool("migration", false, "run the live-migration downtime table")
	slo := flag.Bool("slo", false, "evaluate the latency SLOs against a protected SPEC run")
	serveSweep := flag.Bool("serve", false, "sweep the KV serving front end across offered rates")
	iters := flag.Int("iters", 40, "workload iterations per benchmark")
	sectors := flag.Int("sectors", 640, "fio sectors per pattern")
	csvDir := flag.String("csv", "", "also write fig5.csv/fig6.csv/table3.csv into this directory")
	flag.Parse()

	writeCSV := func(name string, write func(f *os.File) error) {
		if *csvDir == "" {
			return
		}
		f, err := os.Create(filepath.Join(*csvDir, name))
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := write(f); err != nil {
			log.Fatal(err)
		}
	}

	all := !*fig5 && !*fig6 && !*table3 && !*micro && !*ablation && !*migration && !*slo && !*serveSweep

	if *csvDir != "" {
		snap, err := bench.CaptureTelemetry(*iters)
		if err != nil {
			log.Fatal(err)
		}
		writeCSV("telemetry.csv", func(f *os.File) error { return bench.WriteTelemetryCSV(f, snap) })
	}

	if all || *fig5 {
		rows, err := bench.Figure5(*iters)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(bench.FormatFigure("Figure 5: SPEC CPU 2006 normalized overhead vs original Xen", rows))
		writeCSV("fig5.csv", func(f *os.File) error { return bench.WriteFigureCSV(f, rows) })
	}
	if all || *fig6 {
		rows, err := bench.Figure6(*iters)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(bench.FormatFigure("Figure 6: PARSEC normalized overhead vs original Xen", rows))
		writeCSV("fig6.csv", func(f *os.File) error { return bench.WriteFigureCSV(f, rows) })
	}
	if all || *table3 {
		rows, err := bench.Table3(*sectors)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(bench.FormatTable3(rows))
		writeCSV("table3.csv", func(f *os.File) error { return bench.WriteFioCSV(f, rows) })
	}
	if all || *micro {
		g, err := bench.MicroBenchGates(1000)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("Micro-benchmark 1: gate transition costs (cycles)")
		fmt.Printf("  type 1 (disable WP):     %4d   (paper: %d)\n", g.Gate1, g.PaperG1)
		fmt.Printf("  type 2 (checking loop):  %4d   (paper: %d)\n", g.Gate2, g.PaperG2)
		fmt.Printf("  type 3 (add mapping):    %4d   (paper: %d; TLB flush %d, PT write %d)\n",
			g.Gate3, g.PaperG3, g.Gate3TLBFlush, g.Gate3CacheWrt)
		fmt.Println()

		s, err := bench.MicroBenchShadow(1000)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("Micro-benchmark 2: shadowing cost per void hypercall round trip")
		fmt.Printf("  xen round trip:          %5d cycles\n", s.XenRT)
		fmt.Printf("  fidelius round trip:     %5d cycles\n", s.FideliusRT)
		fmt.Printf("  shadow-and-check:        %5d cycles  (paper: %d)\n", s.Shadow, s.Paper)
		fmt.Println()

		io := bench.MicroBenchIOCrypt(512 << 20)
		fmt.Println("Micro-benchmark 3: 512 MB copy under three encryption techniques")
		fmt.Printf("  AES-NI slowdown:         %6.2f%%  (paper: 11.49%%)\n", io.AESNISlowdown)
		fmt.Printf("  SEV/SME slowdown:        %6.2f%%  (paper: 8.69%%)\n", io.SEVSlowdown)
		fmt.Printf("  software overhead:       %6.1fx  (paper: >20x)\n", io.SoftwareRatio)
		fmt.Println()
	}
	if all || *migration {
		rows, err := bench.MigrationTable(nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(bench.FormatMigrationTable(rows))
		writeCSV("migration.csv", func(f *os.File) error { return bench.WriteMigrationCSV(f, rows) })
	}
	if all || *slo {
		evals, err := bench.SLOReport(*iters)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("Service-level objectives (protected SPEC run)")
		if err := telemetry.WriteSLOTable(os.Stdout, evals); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}
	if all || *serveSweep {
		rows, err := bench.ServeSweep(nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(bench.FormatServeSweep("open-loop offered-rate sweep, default mix (4 tenants x 16 clients)", rows))
		writeCSV("serve.csv", func(f *os.File) error { return bench.WriteServeCSV(f, rows) })
		ph, err := bench.ServePutHeavySweep(nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(bench.FormatServeSweep("put-heavy mix, 70% put / 10% delete (4 tenants x 16 clients)", ph))
		writeCSV("serve_putheavy.csv", func(f *os.File) error { return bench.WriteServeCSV(f, ph) })
		gh, err := bench.ServeGetHeavySweep(nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(bench.FormatServeSweep("get-heavy mix, 93% get over a hot working set (4 tenants x 8 clients)", gh))
		writeCSV("serve_getheavy.csv", func(f *os.File) error { return bench.WriteServeCSV(f, gh) })
	}
	if all || *ablation {
		ga, err := bench.MeasureGateAblation(200)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(ga)
		na, err := bench.MeasureNPTAblation(48)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(na)
		pa, err := bench.MeasurePagingAblation(256)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(pa)
		fmt.Println(bench.ModelShadowVsTrap(5))
	}
}
