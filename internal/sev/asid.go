package sev

import (
	"fmt"
	"sync/atomic"

	"fidelius/internal/hw"
	"fidelius/internal/lockrank"
)

// DefaultASIDLimit is the number of simultaneously live guest ASIDs the
// pool hands out by default — real SEV parts expose a small fixed count
// (254 on the paper's EPYC generation, ASID 0 being the host), which is
// exactly why fleet-scale lifecycle churn must recycle ASIDs instead of
// minting forever.
const DefaultASIDLimit = 254

// ASIDPool is the concurrent-safe ASID allocator (lock rank: asid-pool).
// It replaces the hypervisor's old monotonically increasing counter with
// the real resource discipline:
//
//   - Alloc prefers an ASID that is already clean (recycled after a
//     DF_FLUSH), then mints a never-used one, and only when the space is
//     exhausted batches a flush over every retired ASID to make the dirty
//     list reusable.
//   - Retire returns a domain's ASID at decommission time; it stays
//     dirty — unusable — until the pool's flush callback (the firmware's
//     DF_FLUSH) has scrubbed the fabric.
//
// The pool never hands out a dirty ASID, so the firmware's Activate-time
// ErrASIDDirty refusal is a defense-in-depth backstop, not a path normal
// lifecycle churn ever takes.
type ASIDPool struct {
	mu    lockrank.Mutex
	limit int
	next  hw.ASID
	clean []hw.ASID
	dirty []hw.ASID

	// flush scrubs every retired ASID in one batch (wired to the
	// firmware's DFFlush). Called with the pool lock held, which is why
	// the pool ranks below the firmware tables.
	flush func() error

	flushes  atomic.Uint64
	recycles atomic.Uint64
}

// NewASIDPool builds a pool of ASIDs 1..limit (0 or negative selects
// DefaultASIDLimit) over the given batch-flush callback.
func NewASIDPool(limit int, flush func() error) *ASIDPool {
	if limit <= 0 {
		limit = DefaultASIDLimit
	}
	p := &ASIDPool{limit: limit, next: 1, flush: flush}
	p.mu.Init(lockrank.RankASIDPool, nil)
	return p
}

// SetLockInfo re-ranks the pool lock with a shared contention counter.
func (p *ASIDPool) SetLockInfo(rank lockrank.Rank, waits *atomic.Uint64) {
	p.mu.Init(rank, waits)
}

// Alloc returns an ASID that is safe to activate: clean, fresh, or
// recycled behind a DF_FLUSH. It fails only when every ASID is live.
func (p *ASIDPool) Alloc() (hw.ASID, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if n := len(p.clean); n > 0 {
		a := p.clean[n-1]
		p.clean = p.clean[:n-1]
		p.recycles.Add(1)
		return a, nil
	}
	if int(p.next) <= p.limit {
		a := p.next
		p.next++
		return a, nil
	}
	if len(p.dirty) == 0 {
		return 0, fmt.Errorf("sev: all %d asids live", p.limit)
	}
	if p.flush != nil {
		if err := p.flush(); err != nil {
			return 0, fmt.Errorf("sev: df_flush for asid recycle: %w", err)
		}
	}
	p.flushes.Add(1)
	p.clean = append(p.clean, p.dirty...)
	p.dirty = p.dirty[:0]
	n := len(p.clean)
	a := p.clean[n-1]
	p.clean = p.clean[:n-1]
	p.recycles.Add(1)
	return a, nil
}

// Retire returns an ASID to the pool's dirty list. It becomes
// allocatable again only after the next batch flush.
func (p *ASIDPool) Retire(a hw.ASID) {
	if a == 0 {
		return
	}
	p.mu.Lock()
	p.dirty = append(p.dirty, a)
	p.mu.Unlock()
}

// Flushes reports how many batch DF_FLUSH recycles the pool has issued.
func (p *ASIDPool) Flushes() uint64 { return p.flushes.Load() }

// Recycles reports how many allocations were served from recycled (as
// opposed to never-used) ASIDs.
func (p *ASIDPool) Recycles() uint64 { return p.recycles.Load() }

// Live reports how many ASIDs are currently handed out.
func (p *ASIDPool) Live() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return int(p.next) - 1 - len(p.clean) - len(p.dirty)
}
