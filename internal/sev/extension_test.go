package sev

import (
	"bytes"
	"errors"
	"testing"

	"fidelius/internal/hw"
)

func TestGEKImagePreparationIsPlatformFree(t *testing.T) {
	owner, err := NewOwner()
	if err != nil {
		t.Fatal(err)
	}
	kernel := bytes.Repeat([]byte("sixteen byte txt"), 300)
	img, gek, err := owner.PrepareGEKImage(kernel)
	if err != nil {
		t.Fatal(err)
	}
	if img.NumPages() != 2 {
		t.Fatalf("pages = %d, want 2", img.NumPages())
	}
	if gek == (GEK{}) {
		t.Fatal("zero GEK")
	}
	for _, p := range img.Pages {
		if bytes.Contains(p, []byte("sixteen byte txt")) {
			t.Fatal("image page holds plaintext")
		}
	}
}

func TestSetEncGEKAndEncDec(t *testing.T) {
	fw, ctl := newFW(t, 32)
	owner, _ := NewOwner()
	pub, _ := fw.PublicKey()

	h, err := fw.LaunchStart(0)
	if err != nil {
		t.Fatal(err)
	}
	var gek GEK
	copy(gek[:], bytes.Repeat([]byte{9}, 32))
	wrap, err := owner.WrapGEK(pub, gek)
	if err != nil {
		t.Fatal(err)
	}
	if err := fw.SetEncGEK(h, wrap, owner.PublicKey(), owner.Nonce()); err != nil {
		t.Fatal(err)
	}
	if err := fw.LaunchFinish(h); err != nil {
		t.Fatal(err)
	}
	if err := fw.Activate(h, 3); err != nil {
		t.Fatal(err)
	}

	// Guest data in Kvek memory.
	plain := bytes.Repeat([]byte("gek payload data"), 32)
	pa := hw.PFN(5).Addr()
	if err := ctl.Write(hw.Access{PA: pa, Encrypted: true, ASID: 3}, plain); err != nil {
		t.Fatal(err)
	}
	// ENC: Kvek -> GEK, in the *running* state (impossible with SEND).
	ct, err := fw.Enc(h, pa, len(plain), 7)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(ct, []byte("gek payload data")) {
		t.Fatal("ENC output holds plaintext")
	}
	// DEC back into another Kvek page.
	dst := hw.PFN(6).Addr()
	if err := fw.Dec(h, dst, ct, 7); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(plain))
	if err := ctl.Read(hw.Access{PA: dst, Encrypted: true, ASID: 3}, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, plain) {
		t.Fatal("ENC/DEC round trip mismatch")
	}
	// The owner can decrypt the ENC output offline with the GEK.
	offline := append([]byte{}, ct...)
	if err := gekXOR(gek, 7, offline); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(offline, plain) {
		t.Fatal("owner-side GEK decryption mismatch")
	}
}

func TestSetEncGEKWrongOwnerFails(t *testing.T) {
	fw, _ := newFW(t, 8)
	owner, _ := NewOwner()
	mallory, _ := NewOwner()
	pub, _ := fw.PublicKey()
	h, _ := fw.LaunchStart(0)
	var gek GEK
	wrap, err := owner.WrapGEK(pub, gek)
	if err != nil {
		t.Fatal(err)
	}
	if err := fw.SetEncGEK(h, wrap, mallory.PublicKey(), owner.Nonce()); !errors.Is(err, ErrBadWrap) {
		t.Fatalf("want ErrBadWrap, got %v", err)
	}
}

func TestAttestQuoteBasics(t *testing.T) {
	fw, _ := newFW(t, 8)
	var m, r [32]byte
	m[0], r[0] = 1, 2
	q, err := fw.Attest([]byte("nonce"), m, r)
	if err != nil {
		t.Fatal(err)
	}
	pub, err := fw.AttestationKey()
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyQuote(pub, q, []byte("nonce")); err != nil {
		t.Fatal(err)
	}
	// Signature covers the integrity root too.
	bad := *q
	bad.IntegrityRoot[5] ^= 1
	if err := VerifyQuote(pub, &bad, []byte("nonce")); err == nil {
		t.Fatal("root tamper accepted")
	}
	if err := VerifyQuote(pub, nil, []byte("nonce")); err == nil {
		t.Fatal("nil quote accepted")
	}
	// A different platform's key rejects the quote.
	fw2, _ := newFW(t, 8)
	pub2, _ := fw2.AttestationKey()
	if err := VerifyQuote(pub2, q, []byte("nonce")); err == nil {
		t.Fatal("cross-platform quote accepted")
	}
}

func TestAttestRequiresInit(t *testing.T) {
	fw := NewFirmware(hw.NewController(hw.NewMemory(4), 0))
	if _, err := fw.Attest([]byte("n"), [32]byte{}, [32]byte{}); !errors.Is(err, ErrNoAttestKey) {
		t.Fatalf("want ErrNoAttestKey, got %v", err)
	}
	if _, err := fw.AttestationKey(); !errors.Is(err, ErrNoAttestKey) {
		t.Fatalf("want ErrNoAttestKey, got %v", err)
	}
}

func TestFirmwareGuardBlocksAllCommands(t *testing.T) {
	fw, _ := newFW(t, 8)
	h, err := fw.LaunchStart(0)
	if err != nil {
		t.Fatal(err)
	}
	// Install a guard that always denies (Fidelius's, seen from the
	// hypervisor's side).
	fw.Authorize = func() bool { return false }
	if _, err := fw.LaunchStart(0); !errors.Is(err, ErrUnauthorized) {
		t.Errorf("LaunchStart: %v", err)
	}
	if err := fw.Activate(h, 1); !errors.Is(err, ErrUnauthorized) {
		t.Errorf("Activate: %v", err)
	}
	if err := fw.Deactivate(h); !errors.Is(err, ErrUnauthorized) {
		t.Errorf("Deactivate: %v", err)
	}
	if err := fw.Decommission(h); !errors.Is(err, ErrUnauthorized) {
		t.Errorf("Decommission: %v", err)
	}
	if _, err := fw.SendStart(h, nil, nil); !errors.Is(err, ErrUnauthorized) {
		t.Errorf("SendStart: %v", err)
	}
	if _, err := fw.Enc(h, 0, 16, 0); !errors.Is(err, ErrUnauthorized) {
		t.Errorf("Enc: %v", err)
	}
	if _, err := fw.Attest(nil, [32]byte{}, [32]byte{}); !errors.Is(err, ErrUnauthorized) {
		t.Errorf("Attest: %v", err)
	}
	// Re-authorise: commands work again.
	fw.Authorize = func() bool { return true }
	if err := fw.Activate(h, 1); err != nil {
		t.Errorf("post-reauth Activate: %v", err)
	}
}
