package migrate

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"testing"
	"time"

	"fidelius/internal/cycles"
	"fidelius/internal/sev"
)

// fakeSource simulates a guest as a version number per page plus a
// scripted sequence of writes executed one per quantum. Packets carry
// (gfn, version) with a real SHA-256 tag so a corrupting transport is
// caught by the fake target's tag check, mirroring the firmware's.
type fakeSource struct {
	name       string
	pages      int
	mem        map[uint64]uint64
	dirty      map[uint64]bool
	tracking   bool
	script     []uint64 // gfn written per quantum; empty => guest done
	pos        int
	loop       bool // loop the script forever (a never-idle writer)
	pktSeq     uint64
	cyc        uint64
	started    bool
	finished   bool
	canceled   bool
	failFinish error
}

func newFakeSource(pages int, script []uint64) *fakeSource {
	s := &fakeSource{name: "guest", pages: pages, mem: map[uint64]uint64{}, dirty: map[uint64]bool{}, script: script}
	for g := 0; g < pages; g++ {
		s.mem[uint64(g)] = 1
	}
	return s
}

func (s *fakeSource) Name() string  { return s.name }
func (s *fakeSource) MemPages() int { return s.pages }

func (s *fakeSource) BackedGFNs() []uint64 {
	out := make([]uint64, 0, s.pages)
	for g := 0; g < s.pages; g++ {
		out = append(out, uint64(g))
	}
	return out
}

func (s *fakeSource) StartDirty() error {
	s.tracking = true
	s.dirty = map[uint64]bool{}
	return nil
}

func (s *fakeSource) CollectDirty() ([]uint64, error) {
	var out []uint64
	for g := 0; g < s.pages; g++ {
		if s.dirty[uint64(g)] {
			out = append(out, uint64(g))
		}
	}
	s.dirty = map[uint64]bool{}
	return out, nil
}

func (s *fakeSource) StopDirty() error {
	s.tracking = false
	return nil
}

func (s *fakeSource) SendStart() (sev.WrappedKeys, []byte, error) {
	s.started = true
	return sev.WrappedKeys{Ciphertext: []byte("wrapped-tek-tik")}, []byte("nonce-nonce-nonce"), nil
}

func fakePacket(seq, gfn, version uint64) sev.Packet {
	data := make([]byte, 16)
	binary.LittleEndian.PutUint64(data[:8], gfn)
	binary.LittleEndian.PutUint64(data[8:], version)
	return sev.Packet{Seq: seq, Data: data, Tag: sha256.Sum256(data)}
}

func (s *fakeSource) SendPage(gfn uint64) (sev.Packet, error) {
	pkt := fakePacket(s.pktSeq, gfn, s.mem[gfn])
	s.pktSeq++
	s.cyc += 100
	return pkt, nil
}

func (s *fakeSource) SendFinish() (sev.Measurement, error) {
	if s.failFinish != nil {
		return sev.Measurement{}, s.failFinish
	}
	s.finished = true
	return sev.Measurement{0xAA}, nil
}

func (s *fakeSource) Cancel() error {
	s.canceled = true
	return nil
}

func (s *fakeSource) RunQuantum() (bool, error) {
	if s.pos >= len(s.script) {
		if !s.loop || len(s.script) == 0 {
			return true, nil
		}
		s.pos = 0
	}
	gfn := s.script[s.pos]
	s.pos++
	s.mem[gfn]++
	if s.tracking {
		s.dirty[gfn] = true
	}
	s.cyc += 1000
	return false, nil
}

func (s *fakeSource) Cycles() uint64 { return s.cyc }

// fakeTarget reconstructs memory from packets, verifying the tag of every
// packet and that firmware sequence numbers arrive strictly in order —
// the invariant a duplicated or reordered transport must not break.
type fakeTarget struct {
	started  bool
	finished bool
	aborted  bool
	nextSeq  uint64
	mem      map[uint64]uint64
	applies  int
}

func (t *fakeTarget) ReceiveStart(name string, memPages int, kwrap sev.WrappedKeys, nonce []byte) error {
	if t.started {
		return errors.New("double start")
	}
	if name == "" || memPages <= 0 || len(kwrap.Ciphertext) == 0 || len(nonce) == 0 {
		return errors.New("bad start frame")
	}
	t.started = true
	t.mem = map[uint64]uint64{}
	return nil
}

func (t *fakeTarget) ReceivePage(gfn uint64, pkt sev.Packet) error {
	if !t.started {
		return errors.New("page before start")
	}
	if sha256.Sum256(pkt.Data) != pkt.Tag {
		return errors.New("bad tag")
	}
	if pkt.Seq != t.nextSeq {
		return fmt.Errorf("firmware seq %d, want %d", pkt.Seq, t.nextSeq)
	}
	t.nextSeq++
	t.applies++
	g := binary.LittleEndian.Uint64(pkt.Data[:8])
	if g != gfn {
		return errors.New("gfn mismatch")
	}
	t.mem[gfn] = binary.LittleEndian.Uint64(pkt.Data[8:])
	return nil
}

func (t *fakeTarget) ReceiveFinish(mvm sev.Measurement) error {
	if mvm != (sev.Measurement{0xAA}) {
		return errors.New("measurement mismatch")
	}
	t.finished = true
	return nil
}

func (t *fakeTarget) Abort() error {
	t.aborted = true
	return nil
}

// runMigration wires src→conn→tgt with Receive on a goroutine and
// returns Send's outcome.
func runMigration(t *testing.T, src Source, tgt Target, senderConn, receiverConn Conn, cfg Config) (*Stats, error, error) {
	t.Helper()
	recvErr := make(chan error, 1)
	go func() { recvErr <- Receive(tgt, receiverConn) }()
	stats, err := Send(src, senderConn, cfg)
	var rerr error
	select {
	case rerr = <-recvErr:
	case <-time.After(5 * time.Second):
		t.Fatal("receiver did not terminate")
	}
	return stats, err, rerr
}

func checkMemEqual(t *testing.T, src *fakeSource, tgt *fakeTarget) {
	t.Helper()
	for g := 0; g < src.pages; g++ {
		if tgt.mem[uint64(g)] != src.mem[uint64(g)] {
			t.Errorf("gfn %d: target has version %d, source has %d", g, tgt.mem[uint64(g)], src.mem[uint64(g)])
		}
	}
}

func TestLiveMigrationConverges(t *testing.T) {
	// 32 pages; the guest rewrites a 4-page working set for a while and
	// then idles, so pre-copy must converge without forcing.
	script := make([]uint64, 0, 40)
	for i := 0; i < 40; i++ {
		script = append(script, uint64(i%4))
	}
	src := newFakeSource(32, script)
	tgt := &fakeTarget{}
	a, b := Pipe(4)
	stats, err, rerr := runMigration(t, src, tgt, a, b, Config{FinalPages: 4, AckTimeout: time.Second})
	if err != nil || rerr != nil {
		t.Fatalf("send err=%v recv err=%v", err, rerr)
	}
	if !tgt.finished || !src.finished {
		t.Fatal("migration did not complete on both sides")
	}
	if stats.Rounds < 2 {
		t.Fatalf("expected iterative rounds, got %d", stats.Rounds)
	}
	if stats.ForcedFinal {
		t.Fatal("bounded working set should converge, not force the final round")
	}
	if stats.PagesSent != tgt.applies {
		t.Fatalf("sent %d pages, target applied %d", stats.PagesSent, tgt.applies)
	}
	checkMemEqual(t, src, tgt)
}

func TestHighDirtyRateForcesFinalRound(t *testing.T) {
	// The guest rewrites 16 of 24 pages forever: the dirty set can never
	// drop below FinalPages, so the heuristic must force the final round
	// rather than loop.
	script := make([]uint64, 16)
	for i := range script {
		script[i] = uint64(i)
	}
	src := newFakeSource(24, script)
	src.loop = true
	tgt := &fakeTarget{}
	a, b := Pipe(4)
	stats, err, rerr := runMigration(t, src, tgt, a, b, Config{FinalPages: 4, MaxRounds: 50, AckTimeout: time.Second})
	if err != nil || rerr != nil {
		t.Fatalf("send err=%v recv err=%v", err, rerr)
	}
	if !stats.ForcedFinal {
		t.Fatal("non-converging guest must trigger the forced final round")
	}
	if stats.Rounds >= 50 {
		t.Fatalf("forced long before MaxRounds, got %d rounds", stats.Rounds)
	}
	checkMemEqual(t, src, tgt)
	if !tgt.finished {
		t.Fatal("target did not activate")
	}
}

func TestStopAndCopyBaseline(t *testing.T) {
	src := newFakeSource(16, []uint64{1, 2, 3})
	tgt := &fakeTarget{}
	a, b := Pipe(4)
	stats, err, rerr := runMigration(t, src, tgt, a, b, Config{StopAndCopy: true, AckTimeout: time.Second})
	if err != nil || rerr != nil {
		t.Fatalf("send err=%v recv err=%v", err, rerr)
	}
	if stats.Rounds != 1 {
		t.Fatalf("stop-and-copy is one round, got %d", stats.Rounds)
	}
	if src.tracking {
		t.Fatal("stop-and-copy must not arm dirty tracking")
	}
	if got := src.mem[1]; got != 1 {
		t.Fatalf("guest ran during stop-and-copy: page 1 version %d", got)
	}
	checkMemEqual(t, src, tgt)
}

func TestTransportDropIsRetried(t *testing.T) {
	src := newFakeSource(16, []uint64{1, 2, 1, 2})
	tgt := &fakeTarget{}
	a, b := Pipe(8)
	lossy := &Faulty{Conn: a, DropEvery: 3}
	stats, err, rerr := runMigration(t, src, tgt, lossy, b, Config{AckTimeout: 50 * time.Millisecond})
	if err != nil || rerr != nil {
		t.Fatalf("send err=%v recv err=%v", err, rerr)
	}
	if stats.Retries == 0 {
		t.Fatal("a dropping transport must cost retries")
	}
	if stats.PagesSent != tgt.applies {
		t.Fatalf("retries must not double-apply: sent %d, applied %d", stats.PagesSent, tgt.applies)
	}
	checkMemEqual(t, src, tgt)
}

func TestTransportDuplicateAppliedOnce(t *testing.T) {
	src := newFakeSource(16, []uint64{1, 2, 1, 2})
	tgt := &fakeTarget{}
	a, b := Pipe(16)
	dup := &Faulty{Conn: a, DupEvery: 2}
	stats, err, rerr := runMigration(t, src, tgt, dup, b, Config{AckTimeout: time.Second})
	if err != nil || rerr != nil {
		t.Fatalf("send err=%v recv err=%v", err, rerr)
	}
	// fakeTarget's strict firmware-seq check fails the test if any
	// duplicate is applied twice.
	if stats.PagesSent != tgt.applies {
		t.Fatalf("duplicates must collapse: sent %d, applied %d", stats.PagesSent, tgt.applies)
	}
	checkMemEqual(t, src, tgt)
}

func TestTransientCorruptionIsRetried(t *testing.T) {
	src := newFakeSource(16, []uint64{1, 2, 1, 2})
	tgt := &fakeTarget{}
	a, b := Pipe(8)
	mitm := &Faulty{Conn: a, CorruptEvery: 5}
	stats, err, rerr := runMigration(t, src, tgt, mitm, b, Config{AckTimeout: time.Second})
	if err != nil || rerr != nil {
		t.Fatalf("send err=%v recv err=%v", err, rerr)
	}
	if stats.Retries == 0 {
		t.Fatal("corrupted frames must be nacked and retried")
	}
	checkMemEqual(t, src, tgt)
}

func TestRetryExhaustionAbortsCleanly(t *testing.T) {
	src := newFakeSource(8, nil)
	a, _ := Pipe(16) // nobody ever acks
	stats, err := Send(src, a, Config{AckTimeout: 5 * time.Millisecond, MaxRetries: 2})
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("want ErrAborted, got %v", err)
	}
	if !src.canceled {
		t.Fatal("abort must SEND_CANCEL the source back to running")
	}
	if src.tracking {
		t.Fatal("abort must tear down dirty tracking")
	}
	if stats.Retries != 2 {
		t.Fatalf("want 2 retries, got %d", stats.Retries)
	}
}

func TestSenderAbortReachesReceiver(t *testing.T) {
	// A source-side failure after pages have flowed must propagate an
	// abort frame so the target scrubs its half-received state.
	src := newFakeSource(8, nil)
	src.failFinish = errors.New("firmware says no")
	tgt := &fakeTarget{}
	a, b := Pipe(8)
	_, err, rerr := runMigration(t, src, tgt, a, b, Config{AckTimeout: time.Second})
	if err == nil {
		t.Fatal("want sender error")
	}
	if !errors.Is(rerr, ErrAborted) {
		t.Fatalf("receiver should see the abort, got %v", rerr)
	}
	if !tgt.aborted {
		t.Fatal("target must scrub on abort")
	}
	if !src.canceled {
		t.Fatal("source must cancel back to running")
	}
}

func TestReceiverSequenceDiscipline(t *testing.T) {
	// Drive the receiver by hand: a gap is nacked, a duplicate is
	// re-acked without re-applying, and in-order frames advance.
	tgt := &fakeTarget{}
	a, b := Pipe(8)
	done := make(chan error, 1)
	go func() { done <- Receive(tgt, b) }()

	mustAck := func(want bool) *Frame {
		t.Helper()
		f, err := a.Recv(time.Second)
		if err != nil {
			t.Fatalf("recv ack: %v", err)
		}
		if f.Type != FrameAck || f.OK != want {
			t.Fatalf("got %v ok=%v, want ack ok=%v (%s)", f.Type, f.OK, want, f.Err)
		}
		return f
	}

	start := &Frame{Type: FrameStart, Seq: 0, Name: "g", MemPages: 8,
		Kwrap: sev.WrappedKeys{Ciphertext: []byte("k")}, Nonce: []byte("n")}
	if err := a.Send(start); err != nil {
		t.Fatal(err)
	}
	mustAck(true)

	// Gap: seq 2 while 1 is expected.
	if err := a.Send(&Frame{Type: FramePage, Seq: 2, GFN: 0, Pkt: fakePacket(1, 0, 1)}); err != nil {
		t.Fatal(err)
	}
	mustAck(false)

	// The missing frame arrives; then its duplicate is re-acked but the
	// target must see the packet exactly once.
	pg := &Frame{Type: FramePage, Seq: 1, GFN: 3, Pkt: fakePacket(0, 3, 7)}
	if err := a.Send(pg); err != nil {
		t.Fatal(err)
	}
	mustAck(true)
	if err := a.Send(pg); err != nil {
		t.Fatal(err)
	}
	mustAck(true)
	if tgt.applies != 1 {
		t.Fatalf("duplicate was re-applied: %d applies", tgt.applies)
	}

	if err := a.Send(&Frame{Type: FrameFinish, Seq: 2, Mvm: sev.Measurement{0xAA}}); err != nil {
		t.Fatal(err)
	}
	mustAck(true)
	if err := <-done; err != nil {
		t.Fatalf("receiver: %v", err)
	}
	if !tgt.finished || tgt.mem[3] != 7 {
		t.Fatal("receiver state wrong after manual protocol drive")
	}
}

func TestLinkChargesCycles(t *testing.T) {
	var ctr cycles.Counter
	a, b := Pipe(4)
	l := &Link{Conn: a, Counter: &ctr, CyclesPerByte: DefaultCyclesPerByte, LatencyCycles: DefaultLatencyCycles}
	f := &Frame{Type: FramePage, Pkt: fakePacket(0, 1, 1)}
	if err := l.Send(f); err != nil {
		t.Fatal(err)
	}
	want := DefaultLatencyCycles + WireSize(f)*DefaultCyclesPerByte
	if ctr.Total() != want {
		t.Fatalf("link charged %d cycles, want %d", ctr.Total(), want)
	}
	if _, err := b.Recv(time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestPipeCloseUnblocks(t *testing.T) {
	a, b := Pipe(1)
	errc := make(chan error, 1)
	go func() {
		_, err := b.Recv(0)
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond)
	a.Close()
	if err := <-errc; !errors.Is(err, ErrClosed) {
		t.Fatalf("want ErrClosed, got %v", err)
	}
	if err := a.Send(&Frame{Type: FrameAbort}); !errors.Is(err, ErrClosed) {
		t.Fatalf("send on closed pipe: want ErrClosed, got %v", err)
	}
}
