package xen

import (
	"bytes"
	"fmt"
	"runtime"
	"testing"

	"fidelius/internal/hw"
)

// stressPat is the deterministic byte pattern domain id writes into work
// page gfn at offset i during round r.
func stressPat(id DomID, gfn uint64, r, i int) byte {
	return byte(uint64(id)*31 + gfn*17 + uint64(r)*7 + uint64(i))
}

// startStressGuest starts a vCPU that writes, verifies and rewrites a
// per-domain pattern across its work pages, interleaving hypercalls and
// console output so every quantum type (VMMCALL, NPF under Lazy, HLT-free
// completion) is exercised concurrently.
func startStressGuest(x *Xen, d *Domain, workGFN, workPages uint64, rounds int) {
	id := d.ID
	x.StartVCPU(d, func(g *GuestEnv) error {
		buf := make([]byte, hw.PageSize)
		for r := 0; r < rounds; r++ {
			for gfn := workGFN; gfn < workGFN+workPages; gfn++ {
				for i := range buf {
					buf[i] = stressPat(id, gfn, r, i)
				}
				if err := g.Write(gfn*hw.PageSize, buf); err != nil {
					return fmt.Errorf("dom %d write gfn %d round %d: %w", id, gfn, r, err)
				}
				if _, err := g.Hypercall(HCVoid); err != nil {
					return err
				}
			}
			for gfn := workGFN; gfn < workGFN+workPages; gfn++ {
				if err := g.Read(gfn*hw.PageSize, buf); err != nil {
					return fmt.Errorf("dom %d read gfn %d round %d: %w", id, gfn, r, err)
				}
				for i := range buf {
					if buf[i] != stressPat(id, gfn, r, i) {
						return fmt.Errorf("dom %d gfn %d round %d byte %d: got %#x want %#x",
							id, gfn, r, i, buf[i], stressPat(id, gfn, r, i))
					}
				}
			}
			if err := g.ConsolePrint(fmt.Sprintf("dom%d r%d;", id, r)); err != nil {
				return err
			}
		}
		return nil
	})
}

// verifyStressImage checks a domain's final memory image from the host
// side, through the controller with the domain's own view of its memory
// (guest key for SEV domains, plaintext otherwise).
func verifyStressImage(t *testing.T, x *Xen, d *Domain, workGFN, workPages uint64, rounds int) {
	t.Helper()
	var page [hw.PageSize]byte
	last := rounds - 1
	for gfn := workGFN; gfn < workGFN+workPages; gfn++ {
		pfn := d.Frames[gfn]
		if pfn == 0 {
			t.Errorf("dom %d: work gfn %d never backed", d.ID, gfn)
			continue
		}
		if err := x.M.Ctl.ReadPage(pfn, d.SEV, d.ASID, &page); err != nil {
			t.Fatalf("dom %d read back gfn %d: %v", d.ID, gfn, err)
		}
		for i := range page {
			if want := stressPat(d.ID, gfn, last, i); page[i] != want {
				t.Fatalf("dom %d gfn %d byte %d: got %#x want %#x", d.ID, gfn, i, page[i], want)
			}
		}
	}
}

// TestConcurrentDomains is the gate for the parallel scheduler: N domains
// with mixed encrypted/unencrypted working sets, some lazily populated,
// all running truly concurrently under -race. Each guest hammers its own
// disjoint pages through the shared cache, engine, integrity tree and
// telemetry hub; afterwards every domain's final image must be exactly
// its last-round pattern.
func TestConcurrentDomains(t *testing.T) {
	const (
		nDoms     = 8
		workGFN   = 2
		workPages = 4
		rounds    = 3
	)
	x := newXen(t)
	var doms []*Domain
	for i := 0; i < nDoms; i++ {
		cfg := DomainConfig{
			Name:     fmt.Sprintf("stress%d", i),
			MemPages: 16,
			SEV:      i%2 == 0, // mixed encrypted/unencrypted working sets
			Lazy:     i%3 == 0, // some domains fault their frames in live
		}
		d, err := x.CreateDomain(cfg)
		if err != nil {
			t.Fatal(err)
		}
		doms = append(doms, d)
		startStressGuest(x, d, workGFN, workPages, rounds)
	}
	errs := x.ScheduleParallel(doms, 4)
	if len(errs) != 0 {
		t.Fatalf("parallel scheduler errors: %v", errs)
	}
	for _, d := range doms {
		verifyStressImage(t, x, d, workGFN, workPages, rounds)
		if got := x.ConsoleLog(d.ID); !bytes.Contains(got, []byte(fmt.Sprintf("dom%d r%d;", d.ID, rounds-1))) {
			t.Errorf("dom %d console missing final round marker: %q", d.ID, got)
		}
		if x.DomainCycles(d.ID) == 0 {
			t.Errorf("dom %d: no cycles accounted", d.ID)
		}
	}
	// Every runner core went offline again: only the boot CPU's TLB
	// remains on the shootdown bus, and the per-vCPU cycle counters all
	// folded back into the machine clock.
	if got := x.M.TLBs.Cores(); got != 1 {
		t.Errorf("shootdown bus has %d cores after ScheduleParallel, want 1", got)
	}
}

// TestScheduleParallelMatchesSerial is the equivalence invariant: the same
// guests run through the serial round-robin and through the parallel
// scheduler must leave identical per-domain memory images and console
// logs. Two separate machines are built so nothing leaks between runs.
func TestScheduleParallelMatchesSerial(t *testing.T) {
	const (
		workGFN   = 2
		workPages = 3
		rounds    = 2
	)
	type domSpec struct {
		sev, lazy bool
	}
	specs := []domSpec{{true, false}, {false, false}, {true, true}, {false, true}}

	build := func() (*Xen, []*Domain) {
		x := newXen(t)
		var doms []*Domain
		for i, s := range specs {
			d, err := x.CreateDomain(DomainConfig{
				Name:     fmt.Sprintf("eq%d", i),
				MemPages: 16,
				SEV:      s.sev,
				Lazy:     s.lazy,
			})
			if err != nil {
				t.Fatal(err)
			}
			doms = append(doms, d)
			startStressGuest(x, d, workGFN, workPages, rounds)
		}
		return x, doms
	}

	xs, ds := build()
	if errs := xs.Schedule(ds); len(errs) != 0 {
		t.Fatalf("serial run: %v", errs)
	}
	xp, dp := build()
	if errs := xp.ScheduleParallel(dp, 0); len(errs) != 0 {
		t.Fatalf("parallel run: %v", errs)
	}

	var sp, pp [hw.PageSize]byte
	for i := range ds {
		s, p := ds[i], dp[i]
		if got := xp.ConsoleLog(p.ID); !bytes.Equal(got, xs.ConsoleLog(s.ID)) {
			t.Errorf("dom %d console differs: serial %q parallel %q", s.ID, xs.ConsoleLog(s.ID), got)
		}
		// The backed-frame sets must agree everywhere; page contents are
		// compared over the written working set. (An SEV page the guest
		// never wrote decrypts to key-dependent garbage — raw DRAM zeros
		// through a per-machine random key — so untouched pages have no
		// meaningful plaintext to compare.)
		for gfn := 0; gfn < s.MemPages; gfn++ {
			sb, pb := s.Frames[gfn] != 0, p.Frames[gfn] != 0
			if sb != pb {
				t.Fatalf("dom %d gfn %d: backed serial=%v parallel=%v", s.ID, gfn, sb, pb)
			}
		}
		for gfn := uint64(workGFN); gfn < workGFN+workPages; gfn++ {
			if err := xs.M.Ctl.ReadPage(s.Frames[gfn], s.SEV, s.ASID, &sp); err != nil {
				t.Fatal(err)
			}
			if err := xp.M.Ctl.ReadPage(p.Frames[gfn], p.SEV, p.ASID, &pp); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(sp[:], pp[:]) {
				t.Fatalf("dom %d gfn %d: serial and parallel memory images differ", s.ID, gfn)
			}
		}
	}
}

// TestScheduleParallelWidthOne pins the degenerate slot-semaphore case:
// one scheduling slot serializes the runners but must still complete every
// domain through the per-core machinery.
func TestScheduleParallelWidthOne(t *testing.T) {
	x := newXen(t)
	var doms []*Domain
	for i := 0; i < 3; i++ {
		d, err := x.CreateDomain(DomainConfig{Name: fmt.Sprintf("w1-%d", i), MemPages: 16, SEV: true})
		if err != nil {
			t.Fatal(err)
		}
		doms = append(doms, d)
		startStressGuest(x, d, 2, 2, 2)
	}
	if errs := x.ScheduleParallel(doms, 1); len(errs) != 0 {
		t.Fatalf("width-1 parallel run: %v", errs)
	}
	for _, d := range doms {
		verifyStressImage(t, x, d, 2, 2, 2)
	}
}

// TestScheduleParallelCollectsErrors mirrors the serial scheduler's error
// contract: one entry per failed domain, successful domains absent.
func TestScheduleParallelCollectsErrors(t *testing.T) {
	x := newXen(t)
	good, _ := x.CreateDomain(DomainConfig{Name: "good", MemPages: 16, SEV: true})
	bad, _ := x.CreateDomain(DomainConfig{Name: "bad", MemPages: 16, SEV: true})
	x.StartVCPU(good, func(g *GuestEnv) error {
		_, err := g.Hypercall(HCVoid)
		return err
	})
	x.StartVCPU(bad, func(g *GuestEnv) error {
		if _, err := g.Hypercall(HCVoid); err != nil {
			return err
		}
		return fmt.Errorf("guest panic")
	})
	errs := x.ScheduleParallel([]*Domain{good, bad}, 2)
	if len(errs) != 1 {
		t.Fatalf("want one error, got %v", errs)
	}
	if errs[bad.ID] == nil {
		t.Fatal("bad domain's error missing")
	}
}

// TestScheduleParallelUnstartedDomain: a domain without a vCPU fails its
// runner without wedging the others.
func TestScheduleParallelUnstartedDomain(t *testing.T) {
	x := newXen(t)
	idle, _ := x.CreateDomain(DomainConfig{Name: "idle", MemPages: 16, SEV: true})
	live, _ := x.CreateDomain(DomainConfig{Name: "live", MemPages: 16, SEV: true})
	x.StartVCPU(live, func(g *GuestEnv) error {
		_, err := g.Hypercall(HCVoid)
		return err
	})
	errs := x.ScheduleParallel([]*Domain{idle, live}, 2)
	if errs[idle.ID] == nil {
		t.Fatal("unstarted domain should error")
	}
	if errs[live.ID] != nil {
		t.Fatalf("live domain failed: %v", errs[live.ID])
	}
}

// TestScheduleParallelSingleDomainParity guards the satellite requirement
// that a single domain under ScheduleParallel costs within 10% of the
// serial Schedule — the per-core bring-up, big-lock traffic and channel
// handoffs must not tax the degenerate case. Interleaved best-of-N
// rounds, as in the telemetry-off overhead guard.
func TestScheduleParallelSingleDomainParity(t *testing.T) {
	if testing.Short() {
		t.Skip("timing guard skipped in -short")
	}
	workload := func(run func(x *Xen, d *Domain) error) func(b *testing.B) {
		return func(b *testing.B) {
			m, err := NewMachine(Config{MemPages: 2048, CacheLines: 512})
			if err != nil {
				b.Fatal(err)
			}
			x, err := New(m)
			if err != nil {
				b.Fatal(err)
			}
			buf := make([]byte, hw.PageSize)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				d, err := x.CreateDomain(DomainConfig{Name: "parity", MemPages: 16})
				if err != nil {
					b.Fatal(err)
				}
				x.StartVCPU(d, func(g *GuestEnv) error {
					for r := 0; r < 8; r++ {
						if err := g.Write(2*hw.PageSize, buf); err != nil {
							return err
						}
						if _, err := g.Hypercall(HCVoid); err != nil {
							return err
						}
					}
					return nil
				})
				b.StartTimer()
				if err := run(x, d); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				if err := x.DestroyDomain(d, false); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
			}
		}
	}
	serial := workload(func(x *Xen, d *Domain) error {
		if errs := x.Schedule([]*Domain{d}); len(errs) != 0 {
			return errs[d.ID]
		}
		return nil
	})
	par := workload(func(x *Xen, d *Domain) error {
		if errs := x.ScheduleParallel([]*Domain{d}, 1); len(errs) != 0 {
			return errs[d.ID]
		}
		return nil
	})
	const rounds = 4
	var serialNs, parNs float64
	for i := 0; i < rounds; i++ {
		// Interleave measurement rounds so machine-wide noise hits both.
		s := testing.Benchmark(serial)
		p := testing.Benchmark(par)
		if ns := float64(s.NsPerOp()); serialNs == 0 || ns < serialNs {
			serialNs = ns
		}
		if ns := float64(p.NsPerOp()); parNs == 0 || ns < parNs {
			parNs = ns
		}
	}
	if serialNs == 0 {
		t.Skip("timer resolution too coarse for parity check")
	}
	if parNs > serialNs*1.10 {
		t.Errorf("ScheduleParallel with 1 domain costs %.0fns vs serial %.0fns (>10%% overhead, GOMAXPROCS=%d)",
			parNs, serialNs, runtime.GOMAXPROCS(0))
	}
	t.Logf("single-domain quantum cost: serial %.0fns, parallel %.0fns (%.1f%%)",
		serialNs, parNs, 100*(parNs-serialNs)/serialNs)
}
