package bench

import (
	"bytes"
	"testing"
)

func TestMigrationTableQuick(t *testing.T) {
	rows, err := MigrationTable([]int{2, 24})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.LiveDowntime == 0 || r.StopCopyDowntime == 0 {
			t.Fatalf("unmeasured downtime: %+v", r)
		}
		if r.LiveDowntime >= r.StopCopyDowntime {
			t.Fatalf("wset=%d: live downtime %d not below stop-and-copy %d",
				r.WSetPages, r.LiveDowntime, r.StopCopyDowntime)
		}
		if r.BytesOnWire == 0 || r.PagesSent < migGuestPages {
			t.Fatalf("implausible wire stats: %+v", r)
		}
	}
	if rows[0].LiveDowntime >= rows[1].LiveDowntime {
		t.Fatalf("downtime must grow with the working set: %d vs %d",
			rows[0].LiveDowntime, rows[1].LiveDowntime)
	}
	var buf bytes.Buffer
	if err := WriteMigrationCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("live_downtime_cycles")) {
		t.Fatal("CSV header missing")
	}
	if FormatMigrationTable(rows) == "" {
		t.Fatal("empty table")
	}
}
