package kv

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"testing/quick"
)

// memDev is an in-memory BlockDev for unit tests; the integration path
// through the real protected front-ends is exercised in
// examples/kvstore and the root integration tests.
type memDev struct {
	data []byte
}

func newMemDev(sectors int) *memDev { return &memDev{data: make([]byte, sectors*SectorSize)} }

func (m *memDev) WriteSectors(lba uint64, data []byte) error {
	if int(lba)*SectorSize+len(data) > len(m.data) {
		return errors.New("memdev: out of range")
	}
	copy(m.data[lba*SectorSize:], data)
	return nil
}

func (m *memDev) ReadSectors(lba uint64, buf []byte) error {
	if int(lba)*SectorSize+len(buf) > len(m.data) {
		return errors.New("memdev: out of range")
	}
	copy(buf, m.data[lba*SectorSize:])
	return nil
}

func TestPutGetDelete(t *testing.T) {
	s, err := Open(newMemDev(64), 0, 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("alice", []byte("balance=100")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("bob", []byte("balance=250")); err != nil {
		t.Fatal(err)
	}
	v, err := s.Get("alice")
	if err != nil || string(v) != "balance=100" {
		t.Fatalf("get alice: %q %v", v, err)
	}
	// Overwrite.
	if err := s.Put("alice", []byte("balance=50")); err != nil {
		t.Fatal(err)
	}
	v, _ = s.Get("alice")
	if string(v) != "balance=50" {
		t.Fatalf("overwrite lost: %q", v)
	}
	if err := s.Delete("bob"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("bob"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted key: %v", err)
	}
	if s.Len() != 1 {
		t.Fatalf("len %d", s.Len())
	}
}

func TestReplayRecoversState(t *testing.T) {
	dev := newMemDev(128)
	s, _ := Open(dev, 4, 100)
	for i := 0; i < 10; i++ {
		if err := s.Put(fmt.Sprintf("k%d", i), bytes.Repeat([]byte{byte(i)}, 100)); err != nil {
			t.Fatal(err)
		}
	}
	s.Delete("k3")
	s.Put("k5", []byte("updated"))

	// "Reboot": reopen over the same device.
	s2, err := Open(dev, 4, 100)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 9 {
		t.Fatalf("recovered %d keys, want 9", s2.Len())
	}
	if _, err := s2.Get("k3"); !errors.Is(err, ErrNotFound) {
		t.Fatal("tombstone not replayed")
	}
	v, err := s2.Get("k5")
	if err != nil || string(v) != "updated" {
		t.Fatalf("k5 = %q, %v", v, err)
	}
	if s2.UsedSectors() != s.UsedSectors() {
		t.Fatal("log length mismatch after replay")
	}
}

func TestStoreFull(t *testing.T) {
	s, _ := Open(newMemDev(8), 0, 4)
	big := bytes.Repeat([]byte{1}, 3*SectorSize)
	if err := s.Put("a", big); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("b", big); err == nil {
		t.Fatal("overfull store accepted a record")
	}
}

func TestCorruptLogDetected(t *testing.T) {
	dev := newMemDev(16)
	s, _ := Open(dev, 0, 16)
	s.Put("x", []byte("y"))
	dev.data[0] ^= 0xFF // smash the magic
	if _, err := Open(dev, 0, 16); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("want ErrCorrupt, got %v", err)
	}
}

func TestEmptyKeyRejected(t *testing.T) {
	s, _ := Open(newMemDev(8), 0, 8)
	if err := s.Put("", []byte("v")); err == nil {
		t.Fatal("empty key accepted")
	}
}

// TestDeleteTombstoneReplay is the regression test for the old conflated
// semantics, where Delete was Put(key, nil): an empty value used to act
// as a deletion, and a deletion replayed as an empty value. Tombstones
// are now a distinct record type.
func TestDeleteTombstoneReplay(t *testing.T) {
	dev := newMemDev(128)
	s, err := Open(dev, 0, 128)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("gone", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("empty", nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("gone"); err != nil {
		t.Fatal(err)
	}

	check := func(s *Store, phase string) {
		t.Helper()
		if _, err := s.Get("gone"); !errors.Is(err, ErrNotFound) {
			t.Fatalf("%s: deleted key resurrected: %v", phase, err)
		}
		v, err := s.Get("empty")
		if err != nil {
			t.Fatalf("%s: empty value lost: %v", phase, err)
		}
		if len(v) != 0 {
			t.Fatalf("%s: empty value = %q", phase, v)
		}
		if s.Len() != 1 {
			t.Fatalf("%s: len %d, want 1 (keys %v)", phase, s.Len(), s.Keys())
		}
	}
	check(s, "live")

	s2, err := Open(dev, 0, 128)
	if err != nil {
		t.Fatal(err)
	}
	check(s2, "replayed")
	if s2.UsedSectors() != s.UsedSectors() {
		t.Fatal("log length mismatch after replay")
	}

	// Deleting an absent key is a logged no-op that replays cleanly.
	if err := s2.Delete("never-existed"); err != nil {
		t.Fatal(err)
	}
	s3, err := Open(dev, 0, 128)
	if err != nil {
		t.Fatal(err)
	}
	check(s3, "replayed-after-noop-delete")
}

// countingDev counts sector traffic and request calls through a memDev.
type countingDev struct {
	*memDev
	sectorsRead uint64
	writeCalls  uint64
}

func (d *countingDev) ReadSectors(lba uint64, buf []byte) error {
	d.sectorsRead += uint64(len(buf) / SectorSize)
	return d.memDev.ReadSectors(lba, buf)
}

func (d *countingDev) WriteSectors(lba uint64, data []byte) error {
	d.writeCalls++
	return d.memDev.WriteSectors(lba, data)
}

// tornDev drops every sector after the first `budget` written through it,
// simulating a crash at an arbitrary sector boundary mid-commit.
type tornDev struct {
	*memDev
	budget int
}

func (d *tornDev) WriteSectors(lba uint64, data []byte) error {
	n := len(data) / SectorSize
	if d.budget <= 0 {
		return nil
	}
	if n <= d.budget {
		d.budget -= n
		return d.memDev.WriteSectors(lba, data)
	}
	k := d.budget
	d.budget = 0
	return d.memDev.WriteSectors(lba, data[:k*SectorSize])
}

// TestOversizedAppendRejected is the regression test for the
// append/replay bounds mismatch: an oversized Put used to succeed and
// then render the store unopenable (ErrCorrupt on the next Open).
func TestOversizedAppendRejected(t *testing.T) {
	dev := newMemDev(64)
	s, err := Open(dev, 0, 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("anchor", []byte("v")); err != nil {
		t.Fatal(err)
	}
	used := s.UsedSectors()

	bigKey := string(bytes.Repeat([]byte{'k'}, MaxKeyLen+1))
	if err := s.Put(bigKey, []byte("v")); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized key accepted: %v", err)
	}
	if err := s.Put("k", make([]byte, MaxValueLen+1)); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized value accepted: %v", err)
	}
	if err := s.Delete(bigKey); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized tombstone key accepted: %v", err)
	}
	if err := s.Apply([]Op{{Key: "ok", Value: []byte("v")}, {Key: bigKey, Value: nil}}); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized op in batch accepted: %v", err)
	}
	if s.UsedSectors() != used {
		t.Fatalf("rejected appends moved the log head: %d -> %d", used, s.UsedSectors())
	}
	if _, err := s.Get("ok"); !errors.Is(err, ErrNotFound) {
		t.Fatal("rejected batch leaked into the index")
	}
	// A key exactly at the limit is fine, and the store stays openable.
	atLimit := string(bytes.Repeat([]byte{'k'}, MaxKeyLen))
	if err := s.Put(atLimit, []byte("v")); err != nil {
		t.Fatalf("at-limit key rejected: %v", err)
	}
	if _, err := Open(dev, 0, 64); err != nil {
		t.Fatalf("store unopenable after bounds checks: %v", err)
	}
}

// TestReplayReadsEachSectorOnce pins replay's sector traffic to exactly
// one pass over the log (every record sector once, plus the terminator).
// The old replay read each record's head sector twice — once to parse the
// header and again inside the full-record read — so this assertion is the
// regression fence for that double read.
func TestReplayReadsEachSectorOnce(t *testing.T) {
	dev := newMemDev(256)
	s, err := Open(dev, 0, 256)
	if err != nil {
		t.Fatal(err)
	}
	// Mixed record sizes: 1-, 2- and 4-sector records plus a tombstone.
	if err := s.Put("small", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("two", bytes.Repeat([]byte{2}, 600)); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("four", bytes.Repeat([]byte{4}, 1600)); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("small"); err != nil {
		t.Fatal(err)
	}
	used := s.UsedSectors()

	cd := &countingDev{memDev: dev}
	s2, err := Open(cd, 0, 256)
	if err != nil {
		t.Fatal(err)
	}
	if s2.UsedSectors() != used {
		t.Fatalf("replay used %d sectors, want %d", s2.UsedSectors(), used)
	}
	if want := used + 1; cd.sectorsRead != want {
		t.Fatalf("replay read %d sectors for a %d-sector log, want exactly %d",
			cd.sectorsRead, used, want)
	}
}

// TestTornGroupCommitReplay cuts the device at every sector boundary of
// a group commit — after the terminator write, mid-span, mid-record —
// and asserts Open recovers exactly the longest valid prefix of the
// batch: no phantom keys, no half values, no corruption errors.
func TestTornGroupCommitReplay(t *testing.T) {
	const base, region = 4, 256
	seeded := newMemDev(region + int(base))
	s, err := Open(seeded, base, region)
	if err != nil {
		t.Fatal(err)
	}
	model := map[string]string{}
	for i := 0; i < 5; i++ {
		k, v := fmt.Sprintf("seed%d", i), string(bytes.Repeat([]byte{byte('a' + i)}, 40*(i+1)))
		if err := s.Put(k, []byte(v)); err != nil {
			t.Fatal(err)
		}
		model[k] = v
	}
	if err := s.Delete("seed1"); err != nil {
		t.Fatal(err)
	}
	delete(model, "seed1")
	seedUsed := s.UsedSectors()

	// Batch: 1-, 3-, 1- and 2-sector records; sectorsByOp mirrors
	// recordSectors so the test states its own layout expectations.
	batch := []Op{
		{Key: "b0", Value: bytes.Repeat([]byte{0xB0}, 100)},
		{Key: "b1", Value: bytes.Repeat([]byte{0xB1}, 1200)},
		{Key: "seed2", Delete: true},
		{Key: "seed0", Value: bytes.Repeat([]byte{0xB3}, 700)},
	}
	sectorsByOp := []int{1, 3, 1, 2}
	total := 0
	for _, n := range sectorsByOp {
		total += n
	}

	for cut := 0; cut <= total+1; cut++ {
		clone := &memDev{data: append([]byte{}, seeded.data...)}
		torn := &tornDev{memDev: clone, budget: 1 << 30}
		sc, err := Open(torn, base, region)
		if err != nil {
			t.Fatalf("cut %d: reopen before apply: %v", cut, err)
		}
		torn.budget = cut // terminator is sector 1, then the record span
		if err := sc.Apply(batch); err != nil {
			t.Fatalf("cut %d: apply: %v", cut, err)
		}

		re, err := Open(clone, base, region)
		if err != nil {
			t.Fatalf("cut %d: replay after torn commit: %v", cut, err)
		}
		// How many whole records landed? The terminator consumes the
		// first budgeted sector; records follow in op order.
		want := map[string]string{}
		for k, v := range model {
			want[k] = v
		}
		applied, sectors := 0, 0
		if cut >= 1 {
			for i, n := range sectorsByOp {
				if sectors+n > cut-1 {
					break
				}
				sectors += n
				applied = i + 1
			}
			for _, op := range batch[:applied] {
				if op.Delete {
					delete(want, op.Key)
				} else {
					want[op.Key] = string(op.Value)
				}
			}
		}
		if re.Len() != len(want) {
			t.Fatalf("cut %d: recovered %d keys, want %d (prefix %d ops): %v",
				cut, re.Len(), len(want), applied, re.Keys())
		}
		for k, v := range want {
			got, err := re.Get(k)
			if err != nil {
				t.Fatalf("cut %d: key %q lost: %v", cut, k, err)
			}
			if string(got) != v {
				t.Fatalf("cut %d: key %q = %d bytes, want %d (half record surfaced)",
					cut, k, len(got), len(v))
			}
		}
		if got, want := re.UsedSectors(), seedUsed+uint64(sectors); got != want {
			t.Fatalf("cut %d: log head at %d sectors, want %d", cut, got, want)
		}
	}
}

// TestApplyByteIdenticalToSerialPuts proves group commit changes only
// the I/O pattern, not the bytes: the device image after one Apply is
// identical to the image after the equivalent serial Put/Delete
// sequence, with or without the write coalescer in the path.
func TestApplyByteIdenticalToSerialPuts(t *testing.T) {
	ops := []Op{
		{Key: "alpha", Value: []byte("1")},
		{Key: "beta", Value: bytes.Repeat([]byte{7}, 900)},
		{Key: "alpha", Value: []byte("2")},
		{Key: "gamma", Value: nil},
		{Key: "beta", Delete: true},
		{Key: "delta", Value: bytes.Repeat([]byte{9}, 1600)},
	}

	serial := newMemDev(256)
	sa, err := Open(serial, 0, 256)
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range ops {
		if op.Delete {
			err = sa.Delete(op.Key)
		} else {
			err = sa.Put(op.Key, op.Value)
		}
		if err != nil {
			t.Fatal(err)
		}
	}

	batched := newMemDev(256)
	sb, err := Open(batched, 0, 256)
	if err != nil {
		t.Fatal(err)
	}
	if err := sb.Apply(ops); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serial.data, batched.data) {
		t.Fatal("Apply image differs from serial Put image")
	}
	if sa.UsedSectors() != sb.UsedSectors() || sa.Len() != sb.Len() {
		t.Fatalf("shape mismatch: used %d/%d live %d/%d",
			sa.UsedSectors(), sb.UsedSectors(), sa.Len(), sb.Len())
	}

	coalesced := newMemDev(256)
	sc, err := Open(NewWriteCoalescer(coalesced, 0), 0, 256)
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.Apply(ops); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serial.data, coalesced.data) {
		t.Fatal("coalesced Apply image differs from serial Put image")
	}

	// And both replay to the same state.
	ra, _ := Open(serial, 0, 256)
	rb, _ := Open(batched, 0, 256)
	if ra.Len() != rb.Len() {
		t.Fatalf("replayed live keys differ: %d vs %d", ra.Len(), rb.Len())
	}
	for _, k := range ra.Keys() {
		va, _ := ra.Get(k)
		vb, err := rb.Get(k)
		if err != nil || !bytes.Equal(va, vb) {
			t.Fatalf("key %q diverged after replay: %v", k, err)
		}
	}
}

// TestApplyOrderingWithinBatch pins slice-order semantics: a later op on
// the same key wins, both live and across replay.
func TestApplyOrderingWithinBatch(t *testing.T) {
	dev := newMemDev(128)
	s, err := Open(dev, 0, 128)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("a", []byte("old")); err != nil {
		t.Fatal(err)
	}
	err = s.Apply([]Op{
		{Key: "a", Value: []byte("1")},
		{Key: "a", Delete: true},
		{Key: "a", Value: []byte("2")},
		{Key: "b", Delete: true}, // tombstone for an absent key
		{Key: "c", Value: nil},   // empty value stays live
	})
	if err != nil {
		t.Fatal(err)
	}
	check := func(s *Store, phase string) {
		t.Helper()
		if v, err := s.Get("a"); err != nil || string(v) != "2" {
			t.Fatalf("%s: a = %q, %v", phase, v, err)
		}
		if _, err := s.Get("b"); !errors.Is(err, ErrNotFound) {
			t.Fatalf("%s: b: %v", phase, err)
		}
		if v, err := s.Get("c"); err != nil || len(v) != 0 {
			t.Fatalf("%s: c = %q, %v", phase, v, err)
		}
		if s.Len() != 2 {
			t.Fatalf("%s: len %d, want 2", phase, s.Len())
		}
	}
	check(s, "live")
	s2, err := Open(dev, 0, 128)
	if err != nil {
		t.Fatal(err)
	}
	check(s2, "replayed")
}

func TestPutBatchRejectsTombstones(t *testing.T) {
	s, _ := Open(newMemDev(32), 0, 32)
	if err := s.PutBatch([]Op{{Key: "a", Value: []byte("v")}, {Key: "b", Delete: true}}); err == nil {
		t.Fatal("PutBatch accepted a tombstone")
	}
	if err := s.PutBatch([]Op{{Key: "a", Value: []byte("v")}}); err != nil {
		t.Fatal(err)
	}
	if v, err := s.Get("a"); err != nil || string(v) != "v" {
		t.Fatalf("a = %q, %v", v, err)
	}
}

func TestApplyEmptyBatch(t *testing.T) {
	dev := newMemDev(16)
	s, _ := Open(dev, 0, 16)
	before := append([]byte{}, dev.data...)
	if err := s.Apply(nil); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, dev.data) {
		t.Fatal("empty Apply touched the device")
	}
}

func TestPropertyPutGetReplay(t *testing.T) {
	f := func(pairs map[string]string) bool {
		dev := newMemDev(2048)
		s, err := Open(dev, 0, 2048)
		if err != nil {
			return false
		}
		want := map[string]string{}
		for k, v := range pairs {
			if k == "" || len(k) > 64 || len(v) > 256 {
				continue
			}
			if err := s.Put(k, []byte(v)); err != nil {
				return false
			}
			want[k] = v
		}
		s2, err := Open(dev, 0, 2048)
		if err != nil {
			return false
		}
		if s2.Len() != len(want) {
			return false
		}
		for k, v := range want {
			got, err := s2.Get(k)
			if err != nil || string(got) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
