// Package core implements Fidelius itself: the trusted context that lies
// in the same privilege level as the hypervisor but is isolated from it by
// non-bypassable memory protection.
//
// The package provides, following the paper's design (Sections 4 and 5):
//
//   - the page information table (PIT) and grant information table (GIT),
//     stored in dedicated physical pages mapped read-only to the
//     hypervisor;
//   - the three gate types securing transitions between the isolated
//     contexts;
//   - VMCB and register shadowing with exit-reason-classified policies (a
//     software SEV-ES);
//   - the policy set of Table 2 for privileged instructions, plus
//     write-once, execute-once and write-forbidding policies;
//   - the full VM life-cycle: encrypted boot via the SEND/RECEIVE API,
//     runtime memory and I/O protection, migration, secure memory
//     sharing, and shutdown.
package core

import (
	"encoding/binary"
	"fmt"

	"fidelius/internal/hw"
	"fidelius/internal/xen"
)

// PIT entry bit layout (32 bits, Section 5.2): usage in bits 0-3, valid in
// bit 4, owner domain in bits 5-17, ASID in bits 18-31.
const (
	pitUsageMask  = 0xF
	pitValidBit   = 1 << 4
	pitOwnerShift = 5
	pitOwnerMask  = 0x1FFF
	pitASIDShift  = 18
	pitASIDMask   = 0x3FFF
)

// PITEntry is one 32-bit page information record.
type PITEntry uint32

// MakePITEntry builds a valid entry.
func MakePITEntry(use xen.PageUse, owner xen.DomID, asid hw.ASID) PITEntry {
	return PITEntry(uint32(use)&pitUsageMask | pitValidBit |
		(uint32(owner)&pitOwnerMask)<<pitOwnerShift |
		(uint32(asid)&pitASIDMask)<<pitASIDShift)
}

// Valid reports whether the entry is populated.
func (e PITEntry) Valid() bool { return e&pitValidBit != 0 }

// Use reports the page usage.
func (e PITEntry) Use() xen.PageUse { return xen.PageUse(e & pitUsageMask) }

// Owner reports the owning domain.
func (e PITEntry) Owner() xen.DomID { return xen.DomID(uint32(e) >> pitOwnerShift & pitOwnerMask) }

// ASID reports the recorded ASID.
func (e PITEntry) ASID() hw.ASID { return hw.ASID(uint32(e) >> pitASIDShift & pitASIDMask) }

func (e PITEntry) String() string {
	if !e.Valid() {
		return "<invalid>"
	}
	return fmt.Sprintf("%v owner=%d asid=%d", e.Use(), e.Owner(), e.ASID())
}

// pitEntriesPerPage is the 1024 PFNs per 4 KiB leaf page of the paper.
const pitEntriesPerPage = hw.PageSize / 4

// PIT is the page information table: a radix tree over physical frame
// numbers whose leaf pages hold 1024 32-bit entries each. The table lives
// in Fidelius-owned physical pages (mapped read-only in the hypervisor's
// address space), and — as the paper describes — links levels by frame
// number within the direct map so walks need no extra translation.
type PIT struct {
	ctl   *hw.Controller
	alloc *xen.FrameAlloc
	// root maps pfn>>10 to the leaf page for that 1024-frame group; the
	// root itself is a single page of 32-bit leaf-page frame numbers,
	// enough for 4M frames (16 GiB).
	rootPFN hw.PFN
	// Pages lists every page backing the PIT, for protection.
	Pages []hw.PFN
}

// NewPIT allocates the root page.
func NewPIT(ctl *hw.Controller, alloc *xen.FrameAlloc) (*PIT, error) {
	root, err := alloc.Alloc(xen.UseFidelius, 0)
	if err != nil {
		return nil, err
	}
	var zero [hw.PageSize]byte
	if err := ctl.Mem.WriteRaw(root.Addr(), zero[:]); err != nil {
		return nil, err
	}
	ctl.Cache.Invalidate(root.Addr(), hw.PageSize)
	return &PIT{ctl: ctl, alloc: alloc, rootPFN: root, Pages: []hw.PFN{root}}, nil
}

func (p *PIT) read32(pa hw.PhysAddr) (uint32, error) {
	var b [4]byte
	if err := p.ctl.Read(hw.Access{PA: pa}, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}

func (p *PIT) write32(pa hw.PhysAddr, v uint32) error {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	return p.ctl.Write(hw.Access{PA: pa}, b[:])
}

// leafFor finds (allocating if asked) the leaf page covering pfn.
func (p *PIT) leafFor(pfn hw.PFN, create bool) (hw.PFN, error) {
	group := uint64(pfn) >> 10
	if group >= hw.PageSize/4 {
		return 0, fmt.Errorf("core: pfn %#x beyond PIT coverage", uint64(pfn))
	}
	slot := p.rootPFN.Addr() + hw.PhysAddr(group*4)
	v, err := p.read32(slot)
	if err != nil {
		return 0, err
	}
	if v != 0 {
		return hw.PFN(v), nil
	}
	if !create {
		return 0, nil
	}
	leaf, err := p.alloc.Alloc(xen.UseFidelius, 0)
	if err != nil {
		return 0, err
	}
	var zero [hw.PageSize]byte
	if err := p.ctl.Mem.WriteRaw(leaf.Addr(), zero[:]); err != nil {
		return 0, err
	}
	p.ctl.Cache.Invalidate(leaf.Addr(), hw.PageSize)
	p.Pages = append(p.Pages, leaf)
	if err := p.write32(slot, uint32(leaf)); err != nil {
		return 0, err
	}
	return leaf, nil
}

// Set records the entry for a frame.
func (p *PIT) Set(pfn hw.PFN, e PITEntry) error {
	leaf, err := p.leafFor(pfn, true)
	if err != nil {
		return err
	}
	return p.write32(leaf.Addr()+hw.PhysAddr(uint64(pfn)&(pitEntriesPerPage-1))*4, uint32(e))
}

// Get looks up the entry for a frame (zero entry if never set).
func (p *PIT) Get(pfn hw.PFN) (PITEntry, error) {
	leaf, err := p.leafFor(pfn, false)
	if err != nil {
		return 0, err
	}
	if leaf == 0 {
		return 0, nil
	}
	v, err := p.read32(leaf.Addr() + hw.PhysAddr(uint64(pfn)&(pitEntriesPerPage-1))*4)
	return PITEntry(v), err
}

// Clear invalidates the entry for a frame.
func (p *PIT) Clear(pfn hw.PFN) error { return p.Set(pfn, 0) }
