package core

import (
	"fmt"

	"fidelius/internal/cycles"
	"fidelius/internal/disk"
	"fidelius/internal/hw"
	"fidelius/internal/lockrank"
	"fidelius/internal/mmu"
	"fidelius/internal/telemetry"
	"fidelius/internal/xen"
)

// Gatekeeper is Fidelius's implementation of the hypervisor's
// resource-management seam: every critical-resource update the hypervisor
// wants to make arrives here, passes through a gate, and is checked
// against the PIT and GIT policies before (or instead of) being applied.
//
// Locking: the trusted context's own state (PIT, GIT, shadows, write-once
// vectors, VM records) and the shared-machine resources the gates operate
// on (the boot CPU's register file, the host page table, the grant bytes)
// are all guarded by the machine's gate lock. Every exported method below
// takes it at its top — except VMRun, whose caller (the hypervisor's
// vmrun stub) already holds it — so concurrent quanta of different
// domains serialize here and only here.
type Gatekeeper struct {
	F *Fidelius
}

var _ xen.Interposer = (*Gatekeeper)(nil)

// Name implements xen.Interposer.
func (gk *Gatekeeper) Name() string { return gk.F.Name() }

// OnVMExit implements xen.Interposer: shadow and mask.
func (gk *Gatekeeper) OnVMExit(d *xen.Domain, vmcbPA hw.PhysAddr) error {
	gk.F.M.Host.Lock()
	defer gk.F.M.Host.Unlock()
	return gk.F.onVMExit(d, vmcbPA)
}

// PreVMRun implements xen.Interposer: verify and restore.
func (gk *Gatekeeper) PreVMRun(d *xen.Domain, vmcbPA hw.PhysAddr) error {
	gk.F.M.Host.Lock()
	defer gk.F.M.Host.Unlock()
	return gk.F.preVMRun(d, vmcbPA)
}

// VMRun implements xen.Interposer: the type 3 gate around the unmapped
// VMRUN stub. The sanity check between remap and execution validates that
// the VMCB address names a real VMCB page. The hypervisor invokes it with
// the gate lock already held (the stub runs on the shared boot CPU), so
// unlike the other methods it asserts rather than acquires.
func (gk *Gatekeeper) VMRun(vmcbPA hw.PhysAddr) error {
	f := gk.F
	lockrank.AssertHeld(lockrank.RankGate)
	e, err := f.PIT.Get(vmcbPA.Frame())
	if err != nil {
		return err
	}
	if !e.Valid() {
		// Lazily adopt VMCB pages of domains created after Enable: the
		// address must match a real domain's VMCB exactly.
		if d, ok := f.X.DomByVMCB(vmcbPA); ok && vmcbPA == d.VMCBPA() {
			if err := f.PIT.Set(vmcbPA.Frame(), MakePITEntry(xen.UseVMCB, d.ID, d.ASID)); err != nil {
				return err
			}
			e, _ = f.PIT.Get(vmcbPA.Frame())
		}
	}
	if !e.Valid() || e.Use() != xen.UseVMCB {
		return f.violation("vmrun", fmt.Sprintf("vmcb address %#x is not a VMCB page", uint64(vmcbPA)))
	}
	return f.gate3(f.M.Stubs.VmrunPg, f.savedVmrunPTE, func() error {
		return f.M.ExecStub(f.M.Stubs.Vmrun, uint64(vmcbPA))
	})
}

// NewPTPage implements xen.Interposer: tag the new table page in the PIT
// and write-protect it before it can carry any mapping.
func (gk *Gatekeeper) NewPTPage(d *xen.Domain, pfn hw.PFN) error {
	f := gk.F
	f.M.Host.Lock()
	defer f.M.Host.Unlock()
	owner := xen.Dom0
	use := xen.UseXenPageTable
	var asid hw.ASID
	if d != nil {
		owner, use, asid = d.ID, xen.UseNPT, d.ASID
	}
	if err := f.PIT.Set(pfn, MakePITEntry(use, owner, asid)); err != nil {
		return err
	}
	return f.trusted(func() error { return f.protectRO(pfn) })
}

// WritePTE implements xen.Interposer: the type 1 gate with PIT-based
// policy enforcement (Section 5.2).
func (gk *Gatekeeper) WritePTE(d *xen.Domain, slot hw.PhysAddr, val mmu.PTE) error {
	f := gk.F
	f.M.Host.Lock()
	defer f.M.Host.Unlock()
	return f.gate1(func() error {
		if err := f.checkPTEWrite(d, slot, val); err != nil {
			return err
		}
		return f.M.CPU.Write64(uint64(slot), uint64(val))
	})
}

// checkPTEWrite is the PIT policy: the slot must live in a tracked table
// page of the right kind, and the new mapping must not hand the
// hypervisor (or another guest) a protected page.
func (f *Fidelius) checkPTEWrite(d *xen.Domain, slot hw.PhysAddr, val mmu.PTE) error {
	slotEntry, err := f.PIT.Get(slot.Frame())
	if err != nil {
		return err
	}
	if !slotEntry.Valid() {
		return f.violation("pit", fmt.Sprintf("PTE write into untracked page %#x", uint64(slot.Frame())))
	}
	switch slotEntry.Use() {
	case xen.UseNPT:
		return f.checkNPTWrite(d, slotEntry, slot, val)
	case xen.UseXenPageTable:
		return f.checkHostPTWrite(slot, val)
	default:
		return f.violation("pit", fmt.Sprintf("PTE write into %v page %#x", slotEntry.Use(), uint64(slot.Frame())))
	}
}

func (f *Fidelius) checkNPTWrite(d *xen.Domain, slotEntry PITEntry, slot hw.PhysAddr, val mmu.PTE) error {
	if d == nil || slotEntry.Owner() != d.ID {
		return f.violation("pit", "NPT update attributed to the wrong domain")
	}
	cur, err := f.readPTE(slot)
	if err != nil {
		return err
	}
	if !val.Present() {
		return nil // unmapping only removes privilege
	}
	target := val.PFN()
	te, err := f.PIT.Get(target)
	if err != nil {
		return err
	}
	switch {
	case !te.Valid() || te.Use() == xen.UseFree:
		// A fresh frame becomes guest memory: claim it for the guest
		// and unmap it from the hypervisor (Section 4.3.4).
		if err := f.PIT.Set(target, MakePITEntry(xen.UseGuest, d.ID, d.ASID)); err != nil {
			return err
		}
		if err := f.trusted(func() error { return f.unmapFromHypervisor(target) }); err != nil {
			return err
		}
	case te.Use() == xen.UseGuest && te.Owner() == d.ID:
		// Remapping the guest's own page: permission updates are fine,
		// but pointing an established GPA at a *different* frame is the
		// replay attack of Section 2.2.
		if cur.Present() && cur.PFN() != target {
			return f.violation("pit", fmt.Sprintf("NPT remap of gpa slot %#x (replay attack)", uint64(slot)))
		}
	case te.Use() == xen.UseNPT && te.Owner() == d.ID:
		// Linking an intermediate table page of the same domain.
	case te.Use() == xen.UseShared:
		ge, ok, err := f.GIT.Find(func(e GITEntry) bool {
			return e.Target == d.ID && f.gitCoversPFN(e, target)
		})
		if err != nil {
			return err
		}
		if !ok {
			return f.violation("git", fmt.Sprintf("mapping shared frame %#x without a GIT record", uint64(target)))
		}
		if ge.ReadOnly && val.Writable() {
			return f.violation("git", "grant mapping escalated to writable against GIT record")
		}
	default:
		return f.violation("pit", fmt.Sprintf("NPT maps foreign %v page %#x (owner %d)", te.Use(), uint64(target), te.Owner()))
	}
	// Replay guard also applies when the old mapping pointed at guest
	// memory and the new one differs.
	if cur.Present() && val.Present() && cur.PFN() != val.PFN() {
		ce, err := f.PIT.Get(cur.PFN())
		if err != nil {
			return err
		}
		if ce.Valid() && ce.Use() == xen.UseGuest && ce.Owner() == d.ID {
			return f.violation("pit", fmt.Sprintf("NPT remap of gpa slot %#x (replay attack)", uint64(slot)))
		}
	}
	return nil
}

func (f *Fidelius) checkHostPTWrite(slot hw.PhysAddr, val mmu.PTE) error {
	if !val.Present() {
		return nil
	}
	te, err := f.PIT.Get(val.PFN())
	if err != nil {
		return err
	}
	switch te.Use() {
	case xen.UseGuest:
		return f.violation("pit", fmt.Sprintf("hypervisor maps protected guest page %#x", uint64(val.PFN())))
	case xen.UseFidelius:
		return f.violation("pit", "hypervisor maps Fidelius-private page")
	case xen.UseNPT, xen.UseXenPageTable, xen.UseGrantTable:
		if val.Writable() {
			return f.violation("pit", fmt.Sprintf("writable alias of protected %v page %#x", te.Use(), uint64(val.PFN())))
		}
	case xen.UseXenCode:
		if val.Writable() {
			return f.violation("write-forbidding", "writable alias of hypervisor code page")
		}
	}
	return nil
}

func (f *Fidelius) readPTE(slot hw.PhysAddr) (mmu.PTE, error) {
	var b [8]byte
	if err := f.M.Ctl.Read(hw.Access{PA: slot}, b[:]); err != nil {
		return 0, err
	}
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return mmu.PTE(v), nil
}

// WriteGrant implements xen.Interposer: the type 1 gate with GIT-based
// policy enforcement (Section 5.2).
func (gk *Gatekeeper) WriteGrant(d *xen.Domain, slot hw.PhysAddr, entry xen.GrantEntry) error {
	f := gk.F
	f.M.Host.Lock()
	defer f.M.Host.Unlock()
	return f.gate1(func() error {
		if err := f.checkGrantWrite(d, slot, entry); err != nil {
			return err
		}
		var buf [xen.GrantEntrySize]byte
		entry.Marshal(buf[:])
		return f.M.CPU.WriteVA(uint64(slot), buf[:])
	})
}

func (f *Fidelius) checkGrantWrite(d *xen.Domain, slot hw.PhysAddr, entry xen.GrantEntry) error {
	if d == nil {
		return f.violation("git", "grant update without a domain")
	}
	// Lazily adopt the domain's grant-table page into the PIT (domains
	// created after Enable).
	se, err := f.PIT.Get(slot.Frame())
	if err != nil {
		return err
	}
	if !se.Valid() && slot.Frame() == d.Grant.PagePFN {
		if err := f.PIT.Set(slot.Frame(), MakePITEntry(xen.UseGrantTable, d.ID, 0)); err != nil {
			return err
		}
		if err := f.trusted(func() error { return f.protectRO(slot.Frame()) }); err != nil {
			return err
		}
		se, _ = f.PIT.Get(slot.Frame())
	}
	if !se.Valid() || se.Use() != xen.UseGrantTable || se.Owner() != d.ID {
		return f.violation("git", fmt.Sprintf("grant write into %v page of domain %d", se.Use(), se.Owner()))
	}
	if entry.Flags&xen.GrantInUse == 0 {
		return nil // revocation only removes privilege
	}
	ge, ok, err := f.GIT.Find(func(e GITEntry) bool {
		return e.Initiator == d.ID && e.Target == entry.Grantee && e.CoversGFN(entry.GFN)
	})
	if err != nil {
		return err
	}
	if !ok {
		return f.violation("git", fmt.Sprintf("grant of gfn %d to dom %d not declared via pre_sharing_op", entry.GFN, entry.Grantee))
	}
	if ge.ReadOnly && entry.Flags&xen.GrantReadOnly == 0 {
		return f.violation("git", "grant permissions escalated beyond GIT record (read-only declared)")
	}
	// The granted frame becomes shared: retag and restore hypervisor
	// visibility (shared pages are plaintext and legitimately reachable
	// by the driver domain).
	pfn, okf := d.GPAFrame(entry.GFN)
	if !okf {
		return f.violation("git", "grant of unbacked gfn")
	}
	if err := f.PIT.Set(pfn, MakePITEntry(xen.UseShared, d.ID, d.ASID)); err != nil {
		return err
	}
	return f.trusted(func() error { return f.remapToHypervisor(pfn) })
}

// gitCoversPFN reports whether a GIT record's declared GFN range, resolved
// through the initiator's current guest-physical map, covers a host frame.
// Resolution happens at check time: frames need not be physically
// contiguous, and remappings cannot stale the record.
func (f *Fidelius) gitCoversPFN(e GITEntry, pfn hw.PFN) bool {
	d, ok := f.X.Dom(e.Initiator)
	if !ok {
		return false
	}
	for i := uint64(0); i < e.Count; i++ {
		if p, okf := d.GPAFrame(e.GFNStart + i); okf && p == pfn {
			return true
		}
	}
	return false
}

// PreSharing implements xen.Interposer: record the initiator's sharing
// declaration in the GIT (Section 4.3.7). Handled entirely inside the
// trusted context — the hypervisor never touches the GIT.
func (gk *Gatekeeper) PreSharing(initiator, target xen.DomID, gfn, count, flags uint64) error {
	f := gk.F
	f.M.Host.Lock()
	defer f.M.Host.Unlock()
	d, ok := f.X.Dom(initiator)
	if !ok {
		return f.violation("git", "pre_sharing_op from unknown domain")
	}
	if count == 0 || gfn+count > uint64(d.MemPages) {
		return f.violation("git", "pre_sharing_op range outside the initiator's memory")
	}
	pfn, okf := d.GPAFrame(gfn)
	if !okf {
		return f.violation("git", "pre_sharing_op on unbacked gfn")
	}
	for i := uint64(1); i < count; i++ {
		if _, okn := d.GPAFrame(gfn + i); !okn {
			return f.violation("git", "pre_sharing_op range not fully backed")
		}
	}
	return f.GIT.Add(GITEntry{
		Initiator: initiator,
		Target:    target,
		ReadOnly:  flags&uint64(xen.GrantReadOnly) != 0,
		GFNStart:  gfn,
		PFNStart:  pfn,
		Count:     count,
	})
}

// EnableSME implements xen.Interposer: set the C-bit on every NPT leaf of
// the domain's private pages, so that its memory is encrypted with the
// host SME key — the Section 7.1 methodology behind "Fidelius-enc".
func (gk *Gatekeeper) EnableSME(d *xen.Domain) error {
	f := gk.F
	f.M.Host.Lock()
	defer f.M.Host.Unlock()
	f.EncryptAll = true
	for gfn := uint64(0); gfn < uint64(d.MemPages); gfn++ {
		pfn, ok := d.GPAFrame(gfn)
		if !ok {
			continue
		}
		e, err := f.PIT.Get(pfn)
		if err != nil {
			return err
		}
		if e.Valid() && e.Use() == xen.UseShared {
			continue // shared pages stay plaintext
		}
		slot, err := f.X.NPTLeafSlot(d, gfn<<hw.PageShift)
		if err != nil {
			return err
		}
		leaf, err := f.readPTE(slot)
		if err != nil {
			return err
		}
		if !leaf.Present() {
			continue
		}
		if err := f.gate1(func() error {
			return f.M.CPU.Write64(uint64(slot), uint64(leaf.WithFlags(mmu.FlagC)))
		}); err != nil {
			return err
		}
		d.NPTGen++
		// The frame's existing plaintext becomes unreadable unless
		// re-encrypted; mimic the paper's "free pages" semantics by
		// re-encrypting current contents under the host key so the
		// guest sees its data unchanged.
		if err := f.trusted(func() error { return f.encryptFrameInPlace(pfn) }); err != nil {
			return err
		}
	}
	return nil
}

// encryptFrameInPlace converts a plaintext frame to SME ciphertext.
func (f *Fidelius) encryptFrameInPlace(pfn hw.PFN) error {
	var page [hw.PageSize]byte
	if err := f.M.Ctl.Mem.ReadRaw(pfn.Addr(), page[:]); err != nil {
		return err
	}
	f.M.Ctl.Cache.Invalidate(pfn.Addr(), hw.PageSize)
	return f.M.Ctl.Write(hw.Access{PA: pfn.Addr(), Encrypted: true, ASID: hw.HostASID}, page[:])
}

// IOCrypt implements xen.Interposer: the retrofitted event channel of the
// SEV-based I/O path (Section 4.3.5). For writes, SEND_UPDATE re-encrypts
// sectors from the guest's dedicated buffer Md (Kvek) into the shared
// area (TEK); for reads, RECEIVE_UPDATE goes the other way.
func (gk *Gatekeeper) IOCrypt(d *xen.Domain, write bool, mdGFN, lba, count, sharedIdx uint64) error {
	f := gk.F
	f.M.Host.Lock()
	defer f.M.Host.Unlock()
	st := f.vms[d.ID]
	if st == nil || (!st.IOSessionReady && !st.GEKReady) {
		return f.violation("io", "SEV I/O session not established for this domain")
	}
	mdPFN, ok := d.GPAFrame(mdGFN)
	if !ok {
		return f.violation("io", "Md buffer unbacked")
	}
	me, err := f.PIT.Get(mdPFN)
	if err != nil {
		return err
	}
	if !me.Valid() || me.Use() != xen.UseGuest || me.Owner() != d.ID {
		return f.violation("io", "Md buffer is not the guest's own memory")
	}
	if count == 0 || count > uint64(hw.PageSize/disk.SectorSize) {
		return f.violation("io", "sector count exceeds the Md buffer")
	}
	h := f.hub()
	h.M.IOCryptSectors.Add(count)
	if h.Tracing() {
		dir := "read"
		if write {
			dir = "write"
		}
		h.EmitDetail(telemetry.KindIOCrypt, uint32(d.ID), uint32(d.ASID),
			cycles.SEVCommand, lba, count, dir)
	}
	f.M.Ctl.Cycles.Charge(cycles.SEVCommand)
	defer f.enterTrusted()()
	for s := uint64(0); s < count; s++ {
		mdPA := mdPFN.Addr() + hw.PhysAddr(s*disk.SectorSize)
		sharedPA, err := f.sharedSectorPA(d, sharedIdx+s)
		if err != nil {
			return err
		}
		if write {
			var ct []byte
			var err error
			if st.GEKReady {
				// Section 8 extension: ENC on the guest's own context.
				ct, err = f.M.FW.Enc(st.Handle, mdPA, disk.SectorSize, lba+s)
			} else {
				ct, err = f.M.FW.SendIO(st.SDom, mdPA, disk.SectorSize, lba+s)
			}
			if err != nil {
				return err
			}
			if err := f.M.Ctl.Write(hw.Access{PA: sharedPA}, ct); err != nil {
				return err
			}
		} else {
			ct := make([]byte, disk.SectorSize)
			if err := f.M.Ctl.Read(hw.Access{PA: sharedPA}, ct); err != nil {
				return err
			}
			var err error
			if st.GEKReady {
				err = f.M.FW.Dec(st.Handle, mdPA, ct, lba+s)
			} else {
				err = f.M.FW.ReceiveIO(st.RDom, mdPA, ct, lba+s)
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// sharedSectorPA locates a sector of the domain's shared I/O data area.
func (f *Fidelius) sharedSectorPA(d *xen.Domain, sectorIdx uint64) (hw.PhysAddr, error) {
	page := sectorIdx / xen.SectorsPerPage
	if page >= d.Info.DataLen {
		return 0, f.violation("io", "shared sector index beyond the data area")
	}
	pfn, ok := d.GPAFrame(d.Info.DataGFN + page)
	if !ok {
		return 0, f.violation("io", "shared data page unbacked")
	}
	return pfn.Addr() + hw.PhysAddr(sectorIdx%xen.SectorsPerPage)*disk.SectorSize, nil
}

// RegisterWriteOnce implements xen.Interposer: place the page under the
// write-once policy (Section 5.3).
func (gk *Gatekeeper) RegisterWriteOnce(pfn hw.PFN) error {
	f := gk.F
	f.M.Host.Lock()
	defer f.M.Host.Unlock()
	f.writeOnce[pfn] = &onceVec{}
	if err := f.PIT.Set(pfn, MakePITEntry(xen.UseXenData, xen.Dom0, 0)); err != nil {
		return err
	}
	return f.trusted(func() error { return f.protectRO(pfn) })
}

// DomainDestroyed implements xen.Interposer: scrub PIT and GIT state and
// restore hypervisor mappings for reclaimed frames (Section 4.3.8).
func (gk *Gatekeeper) DomainDestroyed(d *xen.Domain) error {
	f := gk.F
	f.M.Host.Lock()
	defer f.M.Host.Unlock()
	for _, pfn := range d.Frames {
		if pfn == 0 {
			continue
		}
		if err := f.PIT.Clear(pfn); err != nil {
			return err
		}
		if err := f.trusted(func() error { return f.remapToHypervisor(pfn) }); err != nil {
			return err
		}
	}
	for _, pfn := range d.NPTPages {
		if err := f.PIT.Clear(pfn); err != nil {
			return err
		}
		if err := f.trusted(func() error { return f.unprotect(pfn) }); err != nil {
			return err
		}
	}
	if err := f.PIT.Clear(d.Grant.PagePFN); err != nil {
		return err
	}
	if err := f.trusted(func() error { return f.unprotect(d.Grant.PagePFN) }); err != nil {
		return err
	}
	// The VMCB page returns to the pool too (it was adopted into the PIT
	// at the domain's first VMRUN).
	if err := f.PIT.Clear(d.VMCBPFN); err != nil {
		return err
	}
	// The start-info page leaves the write-once policy with its frame:
	// teardown returns it to the allocator, and a fresh owner must not
	// inherit a spent write budget or a read-only host mapping.
	if si := d.StartInfoPFN; si != 0 {
		if _, ok := f.writeOnce[si]; ok {
			delete(f.writeOnce, si)
			if err := f.PIT.Clear(si); err != nil {
				return err
			}
			if err := f.trusted(func() error { return f.unprotect(si) }); err != nil {
				return err
			}
		}
	}
	if err := f.GIT.RemoveFor(d.ID); err != nil {
		return err
	}
	delete(f.shadows, d.ID)
	delete(f.vms, d.ID)
	return nil
}
