package serve

import (
	"encoding/binary"
	"fmt"

	"fidelius/internal/hw"
)

// The serve ring is the request/response channel between the (untrusted,
// host-side) client front door and the tenant guest: shared unencrypted
// pages directly after the PV block data pages, split evenly into a
// request direction followed by a response direction. Each direction is
// a run of contiguous guest frames whose sector 0 is the control sector
// and whose sectors 1..frames are op frames:
//
//	request pages:  sector 0 = control, sectors 1..frames = request frames
//	response pages: sector 0 = control, sectors 1..frames = response frames
//
// The frame count is configurable (Config.RingFrames, published to the
// guest via StartInfo.ServeFrames) so the front door can pipeline deep
// batches per doorbell: with the default 15 frames a put-heavy batch
// amortizes one VMEXIT round trip and one kv group commit over twice the
// ops the original 7-frame ring could carry.
//
// Framing is sector-granular like the block protocol: one op per 512-byte
// sector, so a frame never straddles a cache line boundary the host and
// guest could tear. The ring is batch-synchronous — the host fills
// request frames only inside the doorbell event handler (while the guest
// is parked in the hypercall VMEXIT) and drains responses only inside the
// completion handler, so no ring byte is ever accessed concurrently.
//
// Request frame:  [4B magic][8B id][4B op][4B keyLen][4B valLen][key][val]
// Response frame: [4B magic][8B id][4B status][4B valLen][val]
// Request ctl:    [4B magic][4B count][4B flags]    (flags bit0 = stop)
// Response ctl:   [4B magic][4B count]
//
// Like the block ring, the shared pages carry whatever the endpoints
// choose to place there: under an admitted session the guest stores
// values encrypted under the session data key, so the hypervisor-visible
// ring bytes and the disk both stay ciphertext.

// SectorSize is the ring framing granularity.
const SectorSize = 512

// sectorsPerPage is the ring slots (control + frames) one page carries.
const sectorsPerPage = hw.PageSize / SectorSize

// DefaultRingFrames is the per-direction frame capacity when the config
// does not say otherwise: two pages per direction (1 control sector + 15
// frames), double the original single-page ring.
const DefaultRingFrames = 15

// LegacyRingFrames is the frame count guests assume when their start
// info predates the ServeFrames field (ServeFrames == 0).
const LegacyRingFrames = 7

// ringPagesPerDir returns the pages one ring direction occupies: the
// control sector plus one sector per frame, rounded up to whole pages.
func ringPagesPerDir(frames int) int {
	return (frames + 1 + sectorsPerPage - 1) / sectorsPerPage
}

// framePA resolves ring slot `slot` (0 = control sector, 1..frames = op
// frames) within one direction's shared pages. The pages are contiguous
// in guest-physical space but not in host-physical space, hence the
// per-page table.
func framePA(pas []hw.PhysAddr, slot uint32) hw.PhysAddr {
	return pas[slot/sectorsPerPage] + hw.PhysAddr(slot%sectorsPerPage)*SectorSize
}

const ringMagic = 0x5EF1DE10

// Request ops.
const (
	// OpGet reads a key.
	OpGet = 0
	// OpPut writes a key.
	OpPut = 1
	// OpDelete removes a key.
	OpDelete = 2
	// OpInstallKey delivers the session data key (value = 32 key bytes).
	// Only ever enqueued after the client verified the VM's attestation.
	OpInstallKey = 3
)

// Response status codes.
const (
	// StatusOK reports success; gets carry the value.
	StatusOK = 0
	// StatusNotFound reports a missing key (a valid answer, not an error).
	StatusNotFound = 1
	// StatusError reports an execution failure inside the guest.
	StatusError = 2
)

// Request control flags.
const (
	// FlagStop tells the guest the session is over: drain and return.
	FlagStop = 1
)

const (
	reqHeader  = 24 // magic + id + op + keyLen + valLen
	respHeader = 20 // magic + id + status + valLen
)

// MaxKeyLen and MaxValLen bound one op to a single frame sector.
const (
	MaxKeyLen = 128
	MaxValLen = SectorSize - reqHeader - MaxKeyLen
)

// OpName renders an op code for spans and tables.
func OpName(op uint32) string {
	switch op {
	case OpGet:
		return "get"
	case OpPut:
		return "put"
	case OpDelete:
		return "delete"
	case OpInstallKey:
		return "install-key"
	}
	return fmt.Sprintf("op(%d)", op)
}

// encodeRequest packs one request frame into a sector buffer.
func encodeRequest(buf []byte, id uint64, op uint32, key string, val []byte) error {
	if len(key) > MaxKeyLen || len(val) > MaxValLen {
		return fmt.Errorf("serve: request %d/%d bytes exceeds frame", len(key), len(val))
	}
	for i := range buf {
		buf[i] = 0
	}
	binary.LittleEndian.PutUint32(buf[0:], ringMagic)
	binary.LittleEndian.PutUint64(buf[4:], id)
	binary.LittleEndian.PutUint32(buf[12:], op)
	binary.LittleEndian.PutUint32(buf[16:], uint32(len(key)))
	binary.LittleEndian.PutUint32(buf[20:], uint32(len(val)))
	copy(buf[reqHeader:], key)
	copy(buf[reqHeader+len(key):], val)
	return nil
}

// decodeRequest unpacks one request frame.
func decodeRequest(buf []byte) (id uint64, op uint32, key string, val []byte, err error) {
	if binary.LittleEndian.Uint32(buf[0:]) != ringMagic {
		return 0, 0, "", nil, fmt.Errorf("serve: bad request frame magic")
	}
	id = binary.LittleEndian.Uint64(buf[4:])
	op = binary.LittleEndian.Uint32(buf[12:])
	kl := int(binary.LittleEndian.Uint32(buf[16:]))
	vl := int(binary.LittleEndian.Uint32(buf[20:]))
	if kl < 0 || kl > MaxKeyLen || vl < 0 || vl > MaxValLen {
		return 0, 0, "", nil, fmt.Errorf("serve: silly request lengths %d/%d", kl, vl)
	}
	key = string(buf[reqHeader : reqHeader+kl])
	val = append([]byte{}, buf[reqHeader+kl:reqHeader+kl+vl]...)
	return id, op, key, val, nil
}

// encodeResponse packs one response frame into a sector buffer.
func encodeResponse(buf []byte, id uint64, status uint32, val []byte) error {
	if len(val) > SectorSize-respHeader {
		return fmt.Errorf("serve: response %d bytes exceeds frame", len(val))
	}
	for i := range buf {
		buf[i] = 0
	}
	binary.LittleEndian.PutUint32(buf[0:], ringMagic)
	binary.LittleEndian.PutUint64(buf[4:], id)
	binary.LittleEndian.PutUint32(buf[12:], status)
	binary.LittleEndian.PutUint32(buf[16:], uint32(len(val)))
	copy(buf[respHeader:], val)
	return nil
}

// decodeResponse unpacks one response frame.
func decodeResponse(buf []byte) (id uint64, status uint32, val []byte, err error) {
	if binary.LittleEndian.Uint32(buf[0:]) != ringMagic {
		return 0, 0, nil, fmt.Errorf("serve: bad response frame magic")
	}
	id = binary.LittleEndian.Uint64(buf[4:])
	status = binary.LittleEndian.Uint32(buf[12:])
	vl := int(binary.LittleEndian.Uint32(buf[16:]))
	if vl < 0 || vl > SectorSize-respHeader {
		return 0, 0, nil, fmt.Errorf("serve: silly response length %d", vl)
	}
	val = append([]byte{}, buf[respHeader:respHeader+vl]...)
	return id, status, val, nil
}

// encodeReqCtl packs the request control sector.
func encodeReqCtl(buf []byte, count, flags uint32) {
	for i := range buf {
		buf[i] = 0
	}
	binary.LittleEndian.PutUint32(buf[0:], ringMagic)
	binary.LittleEndian.PutUint32(buf[4:], count)
	binary.LittleEndian.PutUint32(buf[8:], flags)
}

// decodeReqCtl unpacks the request control sector.
func decodeReqCtl(buf []byte) (count, flags uint32, err error) {
	if binary.LittleEndian.Uint32(buf[0:]) != ringMagic {
		return 0, 0, fmt.Errorf("serve: bad request control magic")
	}
	return binary.LittleEndian.Uint32(buf[4:]), binary.LittleEndian.Uint32(buf[8:]), nil
}

// encodeRespCtl packs the response control sector.
func encodeRespCtl(buf []byte, count uint32) {
	for i := range buf {
		buf[i] = 0
	}
	binary.LittleEndian.PutUint32(buf[0:], ringMagic)
	binary.LittleEndian.PutUint32(buf[4:], count)
}

// decodeRespCtl unpacks the response control sector.
func decodeRespCtl(buf []byte) (count uint32, err error) {
	if binary.LittleEndian.Uint32(buf[0:]) != ringMagic {
		return 0, fmt.Errorf("serve: bad response control magic")
	}
	return binary.LittleEndian.Uint32(buf[4:]), nil
}
