// Attack demo: the full 17-attack adversary suite of the paper's security analysis
// (Section 6), run side by side against plain Xen with SEV guests and
// against Fidelius.
//
// Run with: go run ./examples/attackdemo
package main

import (
	"fmt"
	"log"

	"fidelius/internal/attack"
)

func main() {
	fmt.Println("Attack matrix — every attack against both configurations (§6)")
	fmt.Println()
	fmt.Printf("%-28s %-9s %-9s %s\n", "attack", "config", "verdict", "detail")
	fmt.Println("--------------------------------------------------------------------------------")

	baseline, err := attack.RunAll(false)
	if err != nil {
		log.Fatal(err)
	}
	protected, err := attack.RunAll(true)
	if err != nil {
		log.Fatal(err)
	}
	for i := range baseline {
		fmt.Println(baseline[i])
		fmt.Println(protected[i])
	}

	var blockedBase, blockedFid int
	for i := range baseline {
		if !baseline[i].Succeeded {
			blockedBase++
		}
		if !protected[i].Succeeded {
			blockedFid++
		}
	}
	fmt.Println()
	fmt.Printf("plain xen+sev : %d/%d attacks blocked (SEV hardware alone)\n", blockedBase, len(baseline))
	fmt.Printf("fidelius      : %d/%d attacks blocked\n", blockedFid, len(protected))
	fmt.Println()
	fmt.Println("Attack descriptions:")
	for _, a := range attack.All() {
		fmt.Printf("  %-28s %s\n", a.Name(), a.Description())
	}
}
