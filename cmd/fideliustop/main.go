// fideliustop boots a protected platform, runs a synthetic multi-VM
// workload, and prints a top-like summary of the telemetry registry:
// per-VM cycle attribution plus the platform-wide counters every layer
// reports (gates, VM exits, SEV commands, memory-controller traffic).
//
// Usage:
//
//	fideliustop [-vms N] [-iters N] [-json] [-trace out.json] [-migrate]
//	            [-serve]
//
// -json dumps the raw registry snapshot instead of the table; -trace
// additionally captures the run as a Chrome trace_event timeline (causal
// spans with parent links included). -migrate live-migrates the first VM
// to a second platform after the workload and reports downtime, rounds
// and wire traffic; the migrate.* registry metrics then show up in the
// table and JSON output too. -serve additionally runs a small multi-tenant
// KV serving scenario and prints a per-tenant latency panel (p50/p99 and
// SLO burn rates). The table mode also evaluates the stock latency SLOs
// and prints the security audit ledger's verdict.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"

	"fidelius"
	"fidelius/internal/telemetry"
)

func main() {
	vms := flag.Int("vms", 2, "number of guest VMs to run")
	iters := flag.Int("iters", 50, "workload iterations per VM")
	jsonOut := flag.Bool("json", false, "dump the registry snapshot as JSON instead of the table")
	traceOut := flag.String("trace", "", "also write a Chrome trace_event timeline to this file")
	migrateVM := flag.Bool("migrate", false, "live-migrate the first VM to a second platform and report downtime")
	serveVMs := flag.Bool("serve", false, "also run the multi-tenant KV serving scenario and print its latency panel")
	flag.Parse()

	plat, err := fidelius.NewPlatform(fidelius.Config{Protected: true})
	if err != nil {
		log.Fatal(err)
	}
	if *traceOut != "" {
		plat.StartTrace(0)
	}
	plat.StartAudit()

	owner, err := fidelius.NewOwner()
	if err != nil {
		log.Fatal(err)
	}
	kernel := bytes.Repeat([]byte("FIDELIUSTOP-KERN"), 256)

	var doms []*fidelius.Domain
	for i := 0; i < *vms; i++ {
		bundle, _, err := fidelius.PrepareGuest(owner, plat.PlatformKey(), kernel, nil)
		if err != nil {
			log.Fatal(err)
		}
		d, err := plat.LaunchVM(fmt.Sprintf("guest-%d", i), 32, bundle)
		if err != nil {
			log.Fatal(err)
		}
		doms = append(doms, d)
		n := *iters * (i + 1) // skew the load so attribution is visible
		plat.StartVCPU(d, func(g *fidelius.GuestEnv) error {
			buf := make([]byte, 64)
			for j := 0; j < n; j++ {
				if err := g.Write(0x4000+uint64(j%16)*64, buf); err != nil {
					return err
				}
				if err := g.Read(0x4000+uint64(j%16)*64, buf); err != nil {
					return err
				}
				if _, err := g.Hypercall(fidelius.HCVoid); err != nil {
					return err
				}
			}
			return nil
		})
	}
	if errs := plat.Schedule(doms); len(errs) != 0 {
		log.Fatal(errs)
	}

	migrated := -1
	if *migrateVM && len(doms) > 0 {
		target, err := fidelius.NewPlatform(fidelius.Config{Protected: true})
		if err != nil {
			log.Fatal(err)
		}
		d2, stats, err := fidelius.LiveMigrate(plat, doms[0], target, fidelius.MigrateConfig{})
		if err != nil {
			log.Fatal(err)
		}
		migrated = 0
		fmt.Printf("migration: %s → target platform\n", doms[0].Name)
		fmt.Printf("  downtime:   %10d cycles (%.3f ms at 3.4 GHz)\n",
			stats.DowntimeCycles, float64(stats.DowntimeCycles)/3.4e6)
		fmt.Printf("  rounds:     %10d (forced final: %v)\n", stats.Rounds, stats.ForcedFinal)
		fmt.Printf("  pages sent: %10d (%d re-dirtied)\n", stats.PagesSent, stats.Redirtied)
		fmt.Printf("  wire bytes: %10d (%d retries)\n\n", stats.BytesOnWire, stats.Retries)
		if err := target.Shutdown(d2); err != nil {
			log.Fatal(err)
		}
	}

	var serveSvc *fidelius.ServeService
	if *serveVMs {
		svc, err := plat.NewServeService(fidelius.ServeConfig{
			Tenants:          4,
			ClientsPerTenant: 16,
			OpsPerClient:     2,
			RatePerMCycle:    0.3,
		})
		if err != nil {
			log.Fatal(err)
		}
		if errs := svc.Run(); len(errs) != 0 {
			for dom, err := range errs {
				if err != nil {
					log.Fatalf("serve domain %d: %v", dom, err)
				}
			}
		}
		serveSvc = svc
	}

	snap := plat.Metrics()
	if *jsonOut {
		if err := snap.WriteJSON(os.Stdout); err != nil {
			log.Fatal(err)
		}
	} else {
		names := plat.Telemetry().VMNames()
		total := snap.Gauges["cycles.total"]
		type row struct {
			id     uint32
			name   string
			cycles uint64
		}
		var rows []row
		for id, name := range names {
			if id == 0 {
				continue
			}
			rows = append(rows, row{id, name, snap.Gauges[fmt.Sprintf("cycles.vm{vm=%d}", id)]})
		}
		sort.Slice(rows, func(i, j int) bool { return rows[i].cycles > rows[j].cycles })
		fmt.Printf("platform: %d VMs, %d total cycles (%.2f ms at 3.4 GHz)\n\n",
			len(rows), total, float64(total)/3.4e6)
		fmt.Printf("%-4s %-12s %14s %7s\n", "VM", "NAME", "CYCLES", "SHARE")
		for _, r := range rows {
			share := 0.0
			if total > 0 {
				share = 100 * float64(r.cycles) / float64(total)
			}
			fmt.Printf("%-4d %-12s %14d %6.1f%%\n", r.id, r.name, r.cycles, share)
		}
		fmt.Println()
		fmt.Println("service-level objectives:")
		if err := telemetry.WriteSLOTable(os.Stdout, plat.EvaluateSLOs(fidelius.DefaultSLOs())); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
		if serveSvc != nil {
			burn := map[string]float64{}
			for _, ev := range serveSvc.EvaluateSLOs() {
				burn[ev.Name] = ev.BurnRate
			}
			fmt.Printf("serving panel: %d client sessions over %d cycles\n",
				serveSvc.Clients(), serveSvc.Elapsed())
			fmt.Printf("%-10s %6s %12s %12s %9s %9s\n",
				"TENANT", "OPS", "P50(CYC)", "P99(CYC)", "P50-BURN", "P99-BURN")
			for _, r := range serveSvc.Reports() {
				if !r.Admitted {
					fmt.Printf("%-10s %6s admission refused\n", r.Name, "-")
					continue
				}
				fmt.Printf("%-10s %6d %12.0f %12.0f %9.2f %9.2f\n",
					r.Name, r.Ops, r.P50, r.P99,
					burn["serve-p50:"+r.Name], burn["serve-p99:"+r.Name])
			}
			var serveOps uint64
			for _, r := range serveSvc.Reports() {
				serveOps += r.Ops
			}
			seekR := snap.Counters["xen.disk_seeks{kind=read}"]
			seekW := snap.Counters["xen.disk_seeks{kind=write}"]
			seeksPerOp := 0.0
			if serveOps > 0 {
				seeksPerOp = float64(seekR+seekW) / float64(serveOps)
			}
			fmt.Printf("disk: %d seeks (%d read, %d write), %.2f seeks/op; kv: %d seq writes, %d group commits\n",
				seekR+seekW, seekR, seekW, seeksPerOp,
				snap.Counters["kv.seq_writes"], snap.Counters["kv.group_commits"])
			hits, misses := snap.Counters["kv.cache_hits"], snap.Counters["kv.cache_misses"]
			hitPct := 0.0
			if hits+misses > 0 {
				hitPct = 100 * float64(hits) / float64(hits+misses)
			}
			fmt.Printf("cache: %.1f%% hits (%d/%d); compaction: %d runs, %d sectors reclaimed; ring: %d doorbell holds\n",
				hitPct, hits, hits+misses,
				snap.Counters["kv.compactions"], snap.Counters["kv.compact_reclaimed"],
				snap.Counters["serve.holds"])
			fmt.Println()
		}
		recs := plat.AuditRecords()
		head := plat.AuditHead()
		if err := fidelius.VerifyAuditChain(recs, head); err != nil {
			fmt.Printf("audit ledger: %d records, VERIFICATION FAILED: %v\n\n", len(recs), err)
		} else {
			fmt.Printf("audit ledger: %d records, hash chain verified (head %x..)\n\n",
				len(recs), head[:8])
		}
		if err := snap.WriteTable(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := plat.WriteTrace(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
	}

	if serveSvc != nil {
		if err := serveSvc.Shutdown(); err != nil {
			log.Fatal(err)
		}
	}
	for i, d := range doms {
		if i == migrated {
			continue // this VM now lives on the target platform
		}
		if err := plat.Shutdown(d); err != nil {
			log.Fatal(err)
		}
	}
}
