// Migration: move a protected VM between two physical machines using the
// SEV SEND/RECEIVE transport (Section 4.3.6). The snapshot travels as
// ciphertext under a transport key agreed between the two platforms'
// firmware identities; tampering is detected by the measurement.
//
// Run with: go run ./examples/migration
package main

import (
	"bytes"
	"fmt"
	"log"

	"fidelius"
)

func main() {
	source, err := fidelius.NewPlatform(fidelius.Config{Protected: true})
	if err != nil {
		log.Fatal(err)
	}
	target, err := fidelius.NewPlatform(fidelius.Config{Protected: true})
	if err != nil {
		log.Fatal(err)
	}

	owner, _ := fidelius.NewOwner()
	kernel := bytes.Repeat([]byte("MIGRATABLE-KERN!"), 256)
	bundle, _, err := fidelius.PrepareGuest(owner, source.PlatformKey(), kernel, nil)
	if err != nil {
		log.Fatal(err)
	}
	vm, err := source.LaunchVM("traveller", 48, bundle)
	if err != nil {
		log.Fatal(err)
	}

	// Accumulate state on the source.
	source.StartVCPU(vm, func(g *fidelius.GuestEnv) error {
		for i := uint64(0); i < 8; i++ {
			if err := g.Write64(0x6000+8*i, 0x1000+i); err != nil {
				return err
			}
		}
		return g.Write(0x9000, []byte("session state v7"))
	})
	if err := source.Run(vm); err != nil {
		log.Fatal(err)
	}
	fmt.Println("source vm ran and accumulated state")

	// SEND: the guest stops (no live migration — SEND_START transitions
	// the firmware context out of the running state).
	snap, err := source.MigrateOut(vm, target)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("snapshot: %d pages, measurement %x…\n", len(snap.Packets), snap.Mvm[:8])

	// The wire format is ciphertext.
	leaky := false
	for _, pkt := range snap.Packets {
		if bytes.Contains(pkt.Data, []byte("session state")) || bytes.Contains(pkt.Data, []byte("MIGRATABLE")) {
			leaky = true
		}
	}
	fmt.Printf("snapshot leaks plaintext: %v\n", leaky)

	// A man-in-the-middle altering a page is caught at RECEIVE_FINISH.
	evil := *snap
	evil.Packets = append(evil.Packets[:0:0], snap.Packets...)
	evil.Packets[2].Data = append([]byte{}, snap.Packets[2].Data...)
	evil.Packets[2].Data[0] ^= 0xFF
	if _, err := target.MigrateIn(&evil, source); err != nil {
		fmt.Printf("tampered snapshot rejected: %v\n", err)
	}

	// The genuine snapshot restores, and the guest state survives.
	vm2, err := target.MigrateIn(snap, source)
	if err != nil {
		log.Fatal(err)
	}
	target.StartVCPU(vm2, func(g *fidelius.GuestEnv) error {
		v, err := g.Read64(0x6000 + 8*7)
		if err != nil {
			return err
		}
		state := make([]byte, 16)
		if err := g.Read(0x9000, state); err != nil {
			return err
		}
		fmt.Printf("target vm resumed: counter=%#x, state=%q\n", v, state)
		return nil
	})
	if err := target.Run(vm2); err != nil {
		log.Fatal(err)
	}
	if err := target.Shutdown(vm2); err != nil {
		log.Fatal(err)
	}
	fmt.Println("migration complete")
}
