package fidelius

import (
	"bytes"
	"testing"
)

// TestFacadeLifecycle exercises the public API end to end, the way the
// README quickstart does.
func TestFacadeLifecycle(t *testing.T) {
	plat, err := NewPlatform(Config{Protected: true})
	if err != nil {
		t.Fatal(err)
	}
	if !plat.Protected() {
		t.Fatal("platform should be protected")
	}
	owner, err := NewOwner()
	if err != nil {
		t.Fatal(err)
	}
	kernel := bytes.Repeat([]byte("public-api-kern!"), 256)
	diskImg := bytes.Repeat([]byte("disk-content-16b"), 64)
	bundle, kblk, err := PrepareGuest(owner, plat.PlatformKey(), kernel, diskImg)
	if err != nil {
		t.Fatal(err)
	}
	vm, err := plat.LaunchVM("api-guest", 64, bundle)
	if err != nil {
		t.Fatal(err)
	}
	if err := plat.SetupIOSession(vm); err != nil {
		t.Fatal(err)
	}
	dk := NewDisk(128)
	if _, err := plat.AttachDisk(vm, dk, 2, 1, bundle); err != nil {
		t.Fatal(err)
	}

	kbase := plat.KernelBase(vm, bundle) * PageSize
	var gotKblk [32]byte
	plat.StartVCPU(vm, func(g *GuestEnv) error {
		if err := g.Read(kbase+KblkOffset, gotKblk[:]); err != nil {
			return err
		}
		bf, err := NewBlockFrontend(g)
		if err != nil {
			return err
		}
		// Read the owner-prepared disk through the AES-NI path.
		front, err := NewAESNIFront(g, bf, gotKblk)
		if err != nil {
			return err
		}
		buf := make([]byte, SectorSize)
		if err := front.ReadSectors(0, buf); err != nil {
			return err
		}
		if !bytes.Equal(buf[:16], []byte("disk-content-16b")) {
			t.Error("disk image did not decrypt through the public API")
		}
		// And write through the SEV path.
		sf := NewSEVFront(g, bf)
		return sf.WriteSectors(50, bytes.Repeat([]byte{0xAA}, SectorSize))
	})
	if err := plat.Run(vm); err != nil {
		t.Fatal(err)
	}
	if gotKblk != kblk {
		t.Fatal("guest recovered a different Kblk")
	}
	if err := plat.Shutdown(vm); err != nil {
		t.Fatal(err)
	}
	if len(plat.Violations()) != 0 {
		t.Fatalf("benign session produced violations: %v", plat.Violations())
	}
}

func TestFacadeUnprotectedErrors(t *testing.T) {
	plat, err := NewPlatform(Config{MemPages: 512})
	if err != nil {
		t.Fatal(err)
	}
	if plat.Protected() {
		t.Fatal("platform should not be protected")
	}
	if _, err := plat.LaunchVM("x", 16, nil); err == nil {
		t.Fatal("LaunchVM on unprotected platform should fail")
	}
	vm, err := plat.CreateVM("plain", 16, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := plat.SetupIOSession(vm); err == nil {
		t.Fatal("SetupIOSession on unprotected platform should fail")
	}
	if _, err := plat.MigrateOut(vm, plat); err == nil {
		t.Fatal("MigrateOut on unprotected platform should fail")
	}
	if err := plat.Shutdown(vm); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeMigration(t *testing.T) {
	src, err := NewPlatform(Config{Protected: true})
	if err != nil {
		t.Fatal(err)
	}
	dst, err := NewPlatform(Config{Protected: true})
	if err != nil {
		t.Fatal(err)
	}
	owner, _ := NewOwner()
	bundle, _, err := PrepareGuest(owner, src.PlatformKey(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	vm, err := src.LaunchVM("mover", 32, bundle)
	if err != nil {
		t.Fatal(err)
	}
	src.StartVCPU(vm, func(g *GuestEnv) error {
		return g.Write(0x7000, []byte("travels with me"))
	})
	if err := src.Run(vm); err != nil {
		t.Fatal(err)
	}
	snap, err := src.MigrateOut(vm, dst)
	if err != nil {
		t.Fatal(err)
	}
	vm2, err := dst.MigrateIn(snap, src)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 15)
	dst.StartVCPU(vm2, func(g *GuestEnv) error { return g.Read(0x7000, got) })
	if err := dst.Run(vm2); err != nil {
		t.Fatal(err)
	}
	if string(got) != "travels with me" {
		t.Fatalf("migrated state: %q", got)
	}
}

func TestFacadeExtensions(t *testing.T) {
	plat, err := NewPlatform(Config{Protected: true})
	if err != nil {
		t.Fatal(err)
	}
	// Attestation through the facade.
	q, err := plat.Attest([]byte("n"))
	if err != nil {
		t.Fatal(err)
	}
	pub, err := plat.AttestationKey()
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyQuote(pub, q, []byte("n")); err != nil {
		t.Fatal(err)
	}
	// GEK portable boot through the facade.
	owner, _ := NewOwner()
	img, gek, err := PrepareGEKGuest(owner, bytes.Repeat([]byte("FACADE-GEK-KERN!"), 256))
	if err != nil {
		t.Fatal(err)
	}
	gb, err := BindGEKGuest(owner, plat.PlatformKey(), img, gek)
	if err != nil {
		t.Fatal(err)
	}
	vm, err := plat.LaunchVMFromGEK("gek", 48, gb)
	if err != nil {
		t.Fatal(err)
	}
	if err := plat.EnableIntegrity(vm); err != nil {
		t.Fatal(err)
	}
	// Snapshot/restore through the facade.
	plat.StartVCPU(vm, func(g *GuestEnv) error { return g.Write(0x3000, []byte("state")) })
	if err := plat.Run(vm); err != nil {
		t.Fatal(err)
	}
	snap, err := plat.SnapshotVM(vm)
	if err != nil {
		t.Fatal(err)
	}
	vm2, err := plat.RestoreVM(snap)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 5)
	plat.StartVCPU(vm2, func(g *GuestEnv) error { return g.Read(0x3000, got) })
	if err := plat.Run(vm2); err != nil {
		t.Fatal(err)
	}
	if string(got) != "state" {
		t.Fatalf("restored %q", got)
	}
}

func TestFacadeSchedule(t *testing.T) {
	plat, err := NewPlatform(Config{Protected: true})
	if err != nil {
		t.Fatal(err)
	}
	owner, _ := NewOwner()
	var doms []*Domain
	for i := 0; i < 2; i++ {
		b, _, err := PrepareGuest(owner, plat.PlatformKey(), nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		vm, err := plat.LaunchVM("sched", 32, b)
		if err != nil {
			t.Fatal(err)
		}
		doms = append(doms, vm)
		plat.StartVCPU(vm, func(g *GuestEnv) error {
			_, err := g.Hypercall(HCVoid)
			return err
		})
	}
	if errs := plat.Schedule(doms); len(errs) != 0 {
		t.Fatalf("schedule errors: %v", errs)
	}
}
