// benchjson converts `go test -bench` text output into a stable JSON
// artifact for the perf CI lane. It reads the benchmark stream on stdin,
// tees the raw text to stderr so the run stays readable, and writes one
// JSON document (benchmark name → metric map) to the -o file. The report
// records the capture environment (Go version, GOMAXPROCS, CPU count) so
// multi-core wins stay attributable.
//
// Usage:
//
//	go test -bench=. -benchmem . | benchjson -o BENCH_4.json
//	benchjson -diff BENCH_4.json BENCH_5.json -threshold 10
//
// -diff compares two reports benchmark-by-benchmark and exits 1 when a
// regression exceeds the threshold percentage — the CI regression gate.
// Two metric classes gate independently: deterministic simulated costs
// (custom units ending in "cycles", which are reproducible run-to-run)
// always gate, while wall-clock ns/op gates only when both artifacts
// were captured in the same environment (same Go version, CPU, core
// count). Cross-environment ns/op deltas are still printed, but flagged
// as ungated noise rather than regressions.
//
// Repeated lines for the same benchmark (a `-count=N` capture) collapse
// into one result holding the per-metric median, so a single wall-clock
// outlier on a busy container cannot poison the artifact; `make bench`
// captures with -count=3 for exactly this reason.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line: the standard metrics emitted by
// the testing package plus any custom b.ReportMetric units.
type Result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report is the whole document written to the output file.
type Report struct {
	Goos       string   `json:"goos,omitempty"`
	Goarch     string   `json:"goarch,omitempty"`
	Pkg        string   `json:"pkg,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	GoVersion  string   `json:"go_version,omitempty"`
	GOMAXPROCS int      `json:"gomaxprocs,omitempty"`
	NumCPU     int      `json:"num_cpu,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

// parseLine parses a single `Benchmark...` result line. Format after the
// name and iteration count is a sequence of "value unit" pairs, e.g.
//
//	BenchmarkX/case-4   100   12293 ns/op   666.37 MB/s   32 B/op   2 allocs/op
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		r.Metrics[fields[i+1]] = v
	}
	return r, len(r.Metrics) > 0
}

// parseStream consumes a `go test -bench` text stream, teeing each line
// to echo (nil to discard), and returns the assembled report stamped with
// the capture environment.
func parseStream(in io.Reader, echo io.Writer) (Report, error) {
	rep := Report{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if echo != nil {
			fmt.Fprintln(echo, line)
		}
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			rep.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		default:
			if r, ok := parseLine(line); ok {
				rep.Benchmarks = append(rep.Benchmarks, r)
			}
		}
	}
	return rep, sc.Err()
}

// aggregate collapses repeated benchmark lines (a -count>1 capture)
// into one Result per name, taking the per-metric median across runs.
// The wall clock on a shared CI container draws occasional 15-20%
// outliers; the median keeps the artifact representative without hiding
// sustained shifts. Deterministic cycle metrics are identical across
// runs, so the median is a no-op for them.
func aggregate(in []Result) []Result {
	var order []string
	group := map[string][]Result{}
	for _, r := range in {
		if _, ok := group[r.Name]; !ok {
			order = append(order, r.Name)
		}
		group[r.Name] = append(group[r.Name], r)
	}
	out := make([]Result, 0, len(order))
	for _, name := range order {
		runs := group[name]
		if len(runs) == 1 {
			out = append(out, runs[0])
			continue
		}
		agg := Result{Name: name, Metrics: map[string]float64{}}
		units := map[string][]float64{}
		iters := make([]int64, 0, len(runs))
		for _, r := range runs {
			iters = append(iters, r.Iterations)
			for u, v := range r.Metrics {
				units[u] = append(units[u], v)
			}
		}
		sort.Slice(iters, func(i, j int) bool { return iters[i] < iters[j] })
		agg.Iterations = iters[len(iters)/2]
		for u, vs := range units {
			sort.Float64s(vs)
			agg.Metrics[u] = vs[len(vs)/2]
		}
		out = append(out, agg)
	}
	return out
}

// Delta is one benchmark's old-vs-new comparison. Percentages are
// (new-old)/old*100; NaN-free because a zero old value reports 0.
type Delta struct {
	Name      string
	OldNs     float64
	NewNs     float64
	NsPct     float64
	OldAllocs float64
	NewAllocs float64
	AllocsPct float64
	Sim       []SimDelta // deterministic cycle-unit metrics present in both
	Missing   bool       // present in old, absent in new
	Added     bool       // absent in old, present in new
}

// SimDelta is an old-vs-new comparison of one deterministic simulated
// metric (a custom unit ending in "cycles"). These come from the cycle
// model, not the host clock, so any nonzero delta is a real behavioral
// change, reproducible across machines.
type SimDelta struct {
	Unit string
	Old  float64
	New  float64
	Pct  float64
}

// simUnit reports whether a metric unit is a deterministic simulated
// cost where lower is better: "cycles", "downtime-cycles", "p99-cycles"
// and the like. Throughput-style units ("ops/Mcycle") do not match.
func simUnit(unit string) bool {
	return strings.HasSuffix(unit, "cycles")
}

// wallFloorNs is the ns/op below which wall-clock deltas are never
// gated. Benchmarks like ShadowVsTrap do all their work outside the
// timer and exist only for their deterministic cycle metrics; their
// timed loop is empty, so ns/op is sub-nanosecond loop overhead whose
// run-to-run ratio is meaningless (0.4ns vs 0.7ns is a "75% regression"
// of nothing). Every real benchmark in the suite is microseconds-plus.
const wallFloorNs = 100

// sameEnv reports whether two artifacts were captured in comparable
// environments, making wall-clock ns/op deltas meaningful. Artifacts
// from before environment stamping (empty GoVersion) never compare.
func sameEnv(a, b Report) bool {
	return a.GoVersion != "" && a.GoVersion == b.GoVersion &&
		a.CPU == b.CPU && a.Goos == b.Goos && a.Goarch == b.Goarch &&
		a.GOMAXPROCS == b.GOMAXPROCS && a.NumCPU == b.NumCPU
}

func pct(oldV, newV float64) float64 {
	if oldV == 0 {
		return 0
	}
	return (newV - oldV) / oldV * 100
}

// diffReports matches benchmarks by name (old report order, then
// new-only additions) and computes the metric deltas.
func diffReports(oldRep, newRep Report) []Delta {
	byName := make(map[string]Result, len(newRep.Benchmarks))
	for _, b := range newRep.Benchmarks {
		byName[b.Name] = b
	}
	var out []Delta
	seen := map[string]bool{}
	for _, ob := range oldRep.Benchmarks {
		seen[ob.Name] = true
		d := Delta{
			Name:      ob.Name,
			OldNs:     ob.Metrics["ns/op"],
			OldAllocs: ob.Metrics["allocs/op"],
		}
		nb, ok := byName[ob.Name]
		if !ok {
			d.Missing = true
			out = append(out, d)
			continue
		}
		d.NewNs = nb.Metrics["ns/op"]
		d.NewAllocs = nb.Metrics["allocs/op"]
		d.NsPct = pct(d.OldNs, d.NewNs)
		d.AllocsPct = pct(d.OldAllocs, d.NewAllocs)
		for unit, oldV := range ob.Metrics {
			if !simUnit(unit) {
				continue
			}
			newV, have := nb.Metrics[unit]
			if !have {
				continue
			}
			d.Sim = append(d.Sim, SimDelta{Unit: unit, Old: oldV, New: newV, Pct: pct(oldV, newV)})
		}
		sort.Slice(d.Sim, func(i, j int) bool { return d.Sim[i].Unit < d.Sim[j].Unit })
		out = append(out, d)
	}
	for _, nb := range newRep.Benchmarks {
		if !seen[nb.Name] {
			out = append(out, Delta{
				Name:      nb.Name,
				NewNs:     nb.Metrics["ns/op"],
				NewAllocs: nb.Metrics["allocs/op"],
				Added:     true,
			})
		}
	}
	return out
}

// writeDiff renders the comparison table and reports whether any gated
// regression exceeds its threshold percent. Deterministic cycle metrics
// always gate at simThreshold; wall-clock ns/op gates at wallThreshold,
// and only when gateWall is true (same capture environment on both
// sides). The two thresholds exist because the two metric classes have
// different noise floors: cycle metrics are bit-reproducible, while
// goroutine-heavy benchmarks on a shared 1-CPU container swing ±15%
// run-to-run even under a median-of-3 capture. Nonzero cycle deltas are
// printed under their benchmark's row — the simulation is
// deterministic, so any movement there is a real behavioral change.
func writeDiff(w io.Writer, deltas []Delta, wallThreshold, simThreshold float64, gateWall bool) bool {
	regressed := false
	fmt.Fprintf(w, "%-56s %14s %14s %8s %10s\n", "benchmark", "old ns/op", "new ns/op", "ns %", "allocs %")
	for _, d := range deltas {
		switch {
		case d.Missing:
			fmt.Fprintf(w, "%-56s %14.1f %14s %8s %10s  (removed)\n", d.Name, d.OldNs, "-", "-", "-")
		case d.Added:
			fmt.Fprintf(w, "%-56s %14s %14.1f %8s %10s  (added)\n", d.Name, "-", d.NewNs, "-", "-")
		default:
			flag := ""
			if d.NsPct > wallThreshold {
				switch {
				case d.OldNs < wallFloorNs && d.NewNs < wallFloorNs:
					flag = "  (sub-resolution, not gated)"
				case gateWall:
					flag = "  REGRESSION"
					regressed = true
				default:
					flag = "  (wall-clock, not gated)"
				}
			}
			fmt.Fprintf(w, "%-56s %14.1f %14.1f %+7.1f%% %+9.1f%%%s\n",
				d.Name, d.OldNs, d.NewNs, d.NsPct, d.AllocsPct, flag)
			for _, s := range d.Sim {
				if s.Pct == 0 {
					continue
				}
				flag := ""
				if s.Pct > simThreshold {
					flag = "  REGRESSION"
					regressed = true
				}
				fmt.Fprintf(w, "    %-20s %24.0f %14.0f %+7.1f%%%s\n", s.Unit, s.Old, s.New, s.Pct, flag)
			}
		}
	}
	return regressed
}

func loadReport(path string) (Report, error) {
	var rep Report
	data, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	return rep, json.Unmarshal(data, &rep)
}

func main() {
	out := flag.String("o", "BENCH.json", "output JSON path")
	diff := flag.Bool("diff", false, "compare two report files: benchjson -diff old.json new.json")
	threshold := flag.Float64("threshold", 10, "regression threshold percent for deterministic cycle metrics in -diff")
	wallThreshold := flag.Float64("wall-threshold", 0, "regression threshold percent for wall-clock ns/op (0 = same as -threshold)")
	flag.Parse()

	if *diff {
		if flag.NArg() != 2 {
			log.Fatal("benchjson: -diff needs exactly two report paths: old.json new.json")
		}
		oldRep, err := loadReport(flag.Arg(0))
		if err != nil {
			log.Fatal(err)
		}
		newRep, err := loadReport(flag.Arg(1))
		if err != nil {
			log.Fatal(err)
		}
		gateWall := sameEnv(oldRep, newRep)
		if !gateWall {
			fmt.Fprintln(os.Stderr, "benchjson: capture environments differ; ns/op deltas reported but not gated (simulated cycle metrics still gate)")
		}
		if *wallThreshold == 0 {
			*wallThreshold = *threshold
		}
		if writeDiff(os.Stdout, diffReports(oldRep, newRep), *wallThreshold, *threshold, gateWall) {
			fmt.Fprintf(os.Stderr, "benchjson: regression detected (thresholds: %.1f%% cycles, %.1f%% wall)\n", *threshold, *wallThreshold)
			os.Exit(1)
		}
		return
	}

	rep, err := parseStream(os.Stdin, os.Stderr)
	if err != nil {
		log.Fatal(err)
	}
	if len(rep.Benchmarks) == 0 {
		log.Fatal("benchjson: no benchmark lines on stdin")
	}
	rep.Benchmarks = aggregate(rep.Benchmarks)
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(rep.Benchmarks), *out)
}
