package core

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"fidelius/internal/migrate"
	"fidelius/internal/xen"
)

// liveMigrate runs both ends of a live migration between two platforms,
// the receiver on its own goroutine (it only touches the target machine).
func liveMigrate(t *testing.T, f1 *Fidelius, d *xen.Domain, f2 *Fidelius,
	senderConn, recvConn migrate.Conn, cfg migrate.Config) (*migrate.Stats, error, *xen.Domain, error) {
	t.Helper()
	targetPub, err := f2.M.FW.PublicKey()
	if err != nil {
		t.Fatal(err)
	}
	originPub, err := f1.M.FW.PublicKey()
	if err != nil {
		t.Fatal(err)
	}
	type res struct {
		d   *xen.Domain
		err error
	}
	ch := make(chan res, 1)
	go func() {
		d2, rerr := f2.MigrateInLive(recvConn, originPub)
		ch <- res{d2, rerr}
	}()
	stats, serr := f1.MigrateOutLive(d, targetPub, senderConn, cfg)
	var r res
	select {
	case r = <-ch:
	case <-time.After(10 * time.Second):
		t.Fatal("receiver did not terminate")
	}
	return stats, serr, r.d, r.err
}

// workloadGuest populates a spread of pages, then loops over a small
// writable working set, then leaves a final marker. Its exits (NPFs and
// HLTs) are the quanta the pre-copy engine interleaves with page sends.
func workloadGuest(g *xen.GuestEnv) error {
	for i := uint64(0); i < 12; i++ {
		if err := g.Write64(0x2000+i*0x1000, 0x100+i); err != nil {
			return err
		}
	}
	for r := uint64(0); r < 3; r++ {
		for w := uint64(0); w < 3; w++ {
			if err := g.Write64(0x2000+w*0x1000, 0xBEEF0000+r); err != nil {
				return err
			}
		}
		g.Halt()
	}
	return g.Write(0x8000, []byte("LIVE-FINAL-STATE"))
}

func launchWorkload(t *testing.T, f *Fidelius) (*xen.Domain, *GuestBundle) {
	t.Helper()
	kernel := bytes.Repeat([]byte("LIVEMIG-KERNEL!!"), 256) // one page
	b, _ := newBundle(t, f, kernel, nil)
	d, err := f.LaunchVM("live-guest", 48, b)
	if err != nil {
		t.Fatal(err)
	}
	return d, b
}

// verifyWorkloadState runs a reader vCPU on the migrated domain and
// checks the workload's final memory is there.
func verifyWorkloadState(t *testing.T, x *xen.Xen, d *xen.Domain) {
	t.Helper()
	x.StartVCPU(d, func(g *xen.GuestEnv) error {
		marker := make([]byte, 16)
		if err := g.Read(0x8000, marker); err != nil {
			return err
		}
		if string(marker) != "LIVE-FINAL-STATE" {
			t.Errorf("final marker = %q", marker)
		}
		for w := uint64(0); w < 3; w++ {
			v, err := g.Read64(0x2000 + w*0x1000)
			if err != nil {
				return err
			}
			if v != 0xBEEF0002 {
				t.Errorf("wset page %d = %#x, want %#x", w, v, uint64(0xBEEF0002))
			}
		}
		v, err := g.Read64(0x2000 + 11*0x1000)
		if err != nil {
			return err
		}
		if v != 0x100+11 {
			t.Errorf("cold page = %#x", v)
		}
		return nil
	})
	if err := x.Run(d); err != nil {
		t.Fatal(err)
	}
}

func TestLiveMigrationBeatsStopAndCopyDowntime(t *testing.T) {
	// Live: the guest runs DURING the migration; the engine converges and
	// only the final residue is copied with the vCPU frozen.
	x1, f1 := newPlatform(t)
	_, f2 := newPlatform(t)
	d, _ := launchWorkload(t, f1)
	x1.StartVCPU(d, workloadGuest)

	a, b := migrate.Pipe(8)
	link := &migrate.Link{Conn: a, Counter: f1.M.Ctl.Cycles,
		CyclesPerByte: migrate.DefaultCyclesPerByte, LatencyCycles: migrate.DefaultLatencyCycles}
	live, serr, d2, rerr := liveMigrate(t, f1, d, f2, link, b, migrate.Config{AckTimeout: time.Second})
	if serr != nil || rerr != nil {
		t.Fatalf("live migration failed: send=%v recv=%v", serr, rerr)
	}
	if !live.GuestDone {
		t.Fatal("workload should have completed during pre-copy")
	}
	if live.ForcedFinal {
		t.Fatal("bounded working set must converge, not force")
	}
	if live.Rounds < 2 {
		t.Fatalf("expected iterative pre-copy, got %d rounds", live.Rounds)
	}
	verifyWorkloadState(t, f2.X, d2)

	// Stop-and-copy baseline: same guest, same transport cost model, but
	// frozen for the whole transfer.
	x3, f3 := newPlatform(t)
	_, f4 := newPlatform(t)
	d3, _ := launchWorkload(t, f3)
	x3.StartVCPU(d3, workloadGuest)
	if err := x3.Run(d3); err != nil {
		t.Fatal(err)
	}
	a2, b2 := migrate.Pipe(8)
	link2 := &migrate.Link{Conn: a2, Counter: f3.M.Ctl.Cycles,
		CyclesPerByte: migrate.DefaultCyclesPerByte, LatencyCycles: migrate.DefaultLatencyCycles}
	sc, serr, d4, rerr := liveMigrate(t, f3, d3, f4, link2, b2,
		migrate.Config{StopAndCopy: true, AckTimeout: time.Second})
	if serr != nil || rerr != nil {
		t.Fatalf("stop-and-copy failed: send=%v recv=%v", serr, rerr)
	}
	verifyWorkloadState(t, f4.X, d4)

	if live.DowntimeCycles == 0 || sc.DowntimeCycles == 0 {
		t.Fatalf("downtime not measured: live=%d sc=%d", live.DowntimeCycles, sc.DowntimeCycles)
	}
	if live.DowntimeCycles >= sc.DowntimeCycles {
		t.Fatalf("live downtime %d must beat stop-and-copy %d",
			live.DowntimeCycles, sc.DowntimeCycles)
	}
	// The liveness is paid for in re-dirtied traffic.
	if live.PagesSent <= sc.PagesSent {
		t.Fatalf("live sent %d pages, stop-and-copy %d: pre-copy must re-send dirty pages",
			live.PagesSent, sc.PagesSent)
	}
}

func TestLiveMigrationHighDirtyRateForcesFinal(t *testing.T) {
	// A guest rewriting 16 pages forever can never converge below the
	// threshold: the heuristic must force the final round, not loop.
	x1, f1 := newPlatform(t)
	_, f2 := newPlatform(t)
	d, _ := launchWorkload(t, f1)
	x1.StartVCPU(d, func(g *xen.GuestEnv) error {
		for r := uint64(0); ; r++ {
			for w := uint64(0); w < 16; w++ {
				if err := g.Write64(0x2000+w*0x1000, r); err != nil {
					return err
				}
			}
			g.Halt()
		}
	})

	a, b := migrate.Pipe(8)
	stats, serr, d2, rerr := liveMigrate(t, f1, d, f2, a, b,
		migrate.Config{FinalPages: 4, MaxRounds: 64, AckTimeout: time.Second})
	if serr != nil || rerr != nil {
		t.Fatalf("migration failed: send=%v recv=%v", serr, rerr)
	}
	if !stats.ForcedFinal {
		t.Fatal("non-converging dirty rate must trigger the forced final round")
	}
	if stats.Rounds >= 64 {
		t.Fatalf("heuristic should fire long before MaxRounds; took %d rounds", stats.Rounds)
	}
	if d2 == nil {
		t.Fatal("target VM not activated")
	}
	if _, ok := f2.VM(d2); !ok {
		t.Fatal("target VM not registered with Fidelius")
	}
}

// sniffer records every frame crossing the sender's endpoint, including
// retransmissions and duplicates — the adversary's view of the wire.
type sniffer struct {
	migrate.Conn
	wire *bytes.Buffer
}

func (s *sniffer) Send(f *migrate.Frame) error {
	s.wire.Write(f.Pkt.Data)
	s.wire.Write(f.Nonce)
	s.wire.Write(f.Kwrap.Ciphertext)
	s.wire.Write(f.Mvm[:])
	s.wire.WriteString(f.Name)
	return s.Conn.Send(f)
}

func TestLiveMigrationCiphertextOnlyOnWire(t *testing.T) {
	x1, f1 := newPlatform(t)
	_, f2 := newPlatform(t)
	d, _ := launchWorkload(t, f1)
	// Plant recognizable secrets, completed before migration so the
	// memory image deterministically contains them.
	x1.StartVCPU(d, func(g *xen.GuestEnv) error {
		for i := uint64(0); i < 8; i++ {
			if err := g.Write(0x2000+i*0x1000, []byte("TOP-SECRET-LIVE-PAYLOAD")); err != nil {
				return err
			}
		}
		return nil
	})
	if err := x1.Run(d); err != nil {
		t.Fatal(err)
	}

	// A lossy, duplicating, occasionally-corrupting network: the sniffer
	// sits inside, seeing every frame that actually crosses, retries and
	// all.
	a, b := migrate.Pipe(16)
	sn := &sniffer{Conn: a, wire: &bytes.Buffer{}}
	net := &migrate.Faulty{Conn: sn, DropEvery: 5, DupEvery: 7, CorruptEvery: 11}
	stats, serr, d2, rerr := liveMigrate(t, f1, d, f2, net, b,
		migrate.Config{AckTimeout: 50 * time.Millisecond})
	if serr != nil || rerr != nil {
		t.Fatalf("migration failed: send=%v recv=%v", serr, rerr)
	}
	if stats.Retries == 0 {
		t.Fatal("faulty transport should have cost retries")
	}
	for _, secret := range [][]byte{[]byte("TOP-SECRET-LIVE"), []byte("LIVEMIG-KERNEL")} {
		if bytes.Contains(sn.wire.Bytes(), secret) {
			t.Fatalf("plaintext %q observed on the wire", secret)
		}
	}
	// And the secrets did arrive, under the target's key.
	x2 := f2.X
	x2.StartVCPU(d2, func(g *xen.GuestEnv) error {
		buf := make([]byte, 23)
		if err := g.Read(0x2000, buf); err != nil {
			return err
		}
		if string(buf) != "TOP-SECRET-LIVE-PAYLOAD" {
			t.Errorf("migrated secret = %q", buf)
		}
		return nil
	})
	if err := x2.Run(d2); err != nil {
		t.Fatal(err)
	}
}

// pageTamper corrupts every page frame it forwards — a persistent
// man-in-the-middle no retry can get past.
type pageTamper struct{ migrate.Conn }

func (p pageTamper) Send(f *migrate.Frame) error {
	if f.Type == migrate.FramePage {
		c := *f
		c.Pkt.Data = append([]byte{}, f.Pkt.Data...)
		c.Pkt.Data[0] ^= 1
		return p.Conn.Send(&c)
	}
	return p.Conn.Send(f)
}

// mvmTamper forges the final measurement on every finish frame.
type mvmTamper struct{ migrate.Conn }

func (m mvmTamper) Send(f *migrate.Frame) error {
	if f.Type == migrate.FrameFinish {
		c := *f
		c.Mvm[0] ^= 0xFF
		return m.Conn.Send(&c)
	}
	return m.Conn.Send(f)
}

// recoverableGuest leaves state, yields while the migration runs, then
// verifies its own memory — proof the source VM survived an abort intact.
func recoverableGuest(g *xen.GuestEnv) error {
	if err := g.Write(0x3000, []byte("must-survive-abort")); err != nil {
		return err
	}
	for i := 0; i < 40; i++ {
		g.Halt()
	}
	buf := make([]byte, 18)
	if err := g.Read(0x3000, buf); err != nil {
		return err
	}
	if string(buf) != "must-survive-abort" {
		return errors.New("guest state corrupted")
	}
	return nil
}

func testAbortLeavesSourceIntact(t *testing.T, wrap func(migrate.Conn) migrate.Conn) {
	t.Helper()
	x1, f1 := newPlatform(t)
	_, f2 := newPlatform(t)
	d, _ := launchWorkload(t, f1)
	x1.StartVCPU(d, recoverableGuest)

	targetDomsBefore := len(f2.X.Doms)
	a, b := migrate.Pipe(16)
	stats, serr, _, rerr := liveMigrate(t, f1, d, f2, wrap(a), b,
		migrate.Config{AckTimeout: 20 * time.Millisecond, MaxRetries: 2})
	if !errors.Is(serr, migrate.ErrAborted) {
		t.Fatalf("want ErrAborted from sender, got %v", serr)
	}
	if rerr == nil {
		t.Fatal("receiver must fail on abort")
	}
	if stats.Retries == 0 {
		t.Fatal("the tampered frame should have been retried before giving up")
	}

	// Target: the half-received VM is scrubbed.
	if len(f2.X.Doms) != targetDomsBefore {
		t.Fatalf("target retains %d domains, want %d", len(f2.X.Doms), targetDomsBefore)
	}

	// Source: still a protected VM, still runnable, memory intact — the
	// guest itself verifies its state and returns nil.
	if _, ok := f1.VM(d); !ok {
		t.Fatal("source VM lost its Fidelius record")
	}
	if err := x1.Run(d); err != nil {
		t.Fatalf("source VM not intact after abort: %v", err)
	}

	// And it can migrate again, cleanly, now that the network behaves.
	a2, b2 := migrate.Pipe(8)
	_, serr, d2, rerr := liveMigrate(t, f1, d, f2, a2, b2, migrate.Config{AckTimeout: time.Second})
	if serr != nil || rerr != nil {
		t.Fatalf("clean retry after abort failed: send=%v recv=%v", serr, rerr)
	}
	x2 := f2.X
	x2.StartVCPU(d2, func(g *xen.GuestEnv) error {
		buf := make([]byte, 18)
		if err := g.Read(0x3000, buf); err != nil {
			return err
		}
		if string(buf) != "must-survive-abort" {
			t.Errorf("state after re-migration = %q", buf)
		}
		return nil
	})
	if err := x2.Run(d2); err != nil {
		t.Fatal(err)
	}
}

func TestLiveMigrationTamperedPageAborts(t *testing.T) {
	testAbortLeavesSourceIntact(t, func(c migrate.Conn) migrate.Conn { return pageTamper{c} })
}

func TestLiveMigrationTamperedMeasurementAborts(t *testing.T) {
	testAbortLeavesSourceIntact(t, func(c migrate.Conn) migrate.Conn { return mvmTamper{c} })
}
