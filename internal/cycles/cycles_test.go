package cycles

import (
	"testing"
	"testing/quick"
)

func TestCounterBasics(t *testing.T) {
	var c Counter
	if c.Total() != 0 {
		t.Fatal("zero value not zero")
	}
	c.Charge(100)
	c.Charge(23)
	if c.Total() != 123 {
		t.Fatalf("total %d", c.Total())
	}
	if c.Sub(100) != 23 {
		t.Fatalf("sub %d", c.Sub(100))
	}
	c.SetTotal(50)
	if c.Total() != 50 {
		t.Fatal("SetTotal")
	}
	c.Reset()
	if c.Total() != 0 {
		t.Fatal("Reset")
	}
}

func TestPropertyCounterAccumulates(t *testing.T) {
	f := func(charges []uint16) bool {
		var c Counter
		var want uint64
		for _, ch := range charges {
			c.Charge(uint64(ch))
			want += uint64(ch)
		}
		return c.Total() == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestPaperAnchoredConstants pins the cost model to the paper's published
// micro-benchmark measurements (Section 7.2): if anyone retunes the model,
// this test forces the gate costs to stay at the measured values.
func TestPaperAnchoredConstants(t *testing.T) {
	if Gate1 != 306 {
		t.Errorf("Gate1 = %d, paper measured 306", Gate1)
	}
	if Gate2 != 16 {
		t.Errorf("Gate2 = %d, paper measured 16", Gate2)
	}
	if Gate3 != 339 {
		t.Errorf("Gate3 = %d, paper measured 339", Gate3)
	}
	if ShadowCheck != 661 {
		t.Errorf("ShadowCheck = %d, paper measured 661", ShadowCheck)
	}
	if TLBFlushEntry != 128 {
		t.Errorf("TLBFlushEntry = %d, paper measured 128", TLBFlushEntry)
	}
	if PTWrite >= 3 {
		t.Errorf("PTWrite = %d, paper measured <2", PTWrite)
	}
	// The I/O-encryption throughput ratios of micro-benchmark 3.
	aesni := 100 * float64(EncAESNI) / float64(CopyBlock)
	if aesni < 10.5 || aesni > 12.5 {
		t.Errorf("AES-NI model %.2f%%, paper 11.49%%", aesni)
	}
	sme := 100 * float64(EncSEVTput) / float64(CopyBlock)
	if sme < 7.7 || sme > 9.7 {
		t.Errorf("SME model %.2f%%, paper 8.69%%", sme)
	}
	if float64(EncSoftware)/float64(CopyBlock) < 20 {
		t.Errorf("software model below the paper's >20x")
	}
}
