package workload

import (
	"testing"

	"fidelius/internal/disk"
	"fidelius/internal/xen"
)

func TestProfileSuitesComplete(t *testing.T) {
	spec := SPEC()
	if len(spec) != 11 {
		t.Fatalf("SPEC has %d profiles, want the paper's 11 C benchmarks", len(spec))
	}
	parsec := PARSEC()
	if len(parsec) != 13 {
		t.Fatalf("PARSEC has %d profiles, want 13", len(parsec))
	}
	// Figure 5's average: 5.38% for Fidelius-enc.
	var sum float64
	for _, p := range spec {
		sum += p.PaperEnc
	}
	if avg := sum / float64(len(spec)); avg < 5.3 || avg > 5.5 {
		t.Errorf("SPEC paper-enc average %.2f, want 5.38", avg)
	}
	// Figure 6's average: 1.97%.
	sum = 0
	for _, p := range parsec {
		sum += p.PaperEnc
	}
	if avg := sum / float64(len(parsec)); avg < 1.9 || avg > 2.1 {
		t.Errorf("PARSEC paper-enc average %.2f, want 1.97", avg)
	}
	// Outliers are present and marked.
	for _, name := range []string{"mcf", "omnetpp", "canneal"} {
		p, ok := ByName(name)
		if !ok {
			t.Fatalf("profile %s missing", name)
		}
		if p.MissRate < 0.5 {
			t.Errorf("%s should be memory-bound (miss rate %.2f)", name, p.MissRate)
		}
	}
	if _, ok := ByName("nonexistent"); ok {
		t.Error("ByName should miss")
	}
}

func TestRunnerDeterminism(t *testing.T) {
	prof, _ := ByName("gcc")
	run := func() Result {
		m, err := xen.NewMachine(xen.Config{MemPages: 2048, CacheLines: 1024})
		if err != nil {
			t.Fatal(err)
		}
		x, err := xen.New(m)
		if err != nil {
			t.Fatal(err)
		}
		d, err := x.CreateDomain(xen.DomainConfig{Name: "w", MemPages: GuestMemPages})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(x, d, prof, 5)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Cycles != b.Cycles {
		t.Fatalf("runner is nondeterministic: %d vs %d cycles", a.Cycles, b.Cycles)
	}
	if a.Iterations != 5 || a.CyclesPerIter() <= 0 {
		t.Fatalf("bad result bookkeeping: %+v", a)
	}
}

func TestOverheadComputation(t *testing.T) {
	base := Result{Cycles: 1000, Iterations: 10}
	other := Result{Cycles: 1100, Iterations: 10}
	if got := other.Overhead(base); got < 9.9 || got > 10.1 {
		t.Fatalf("overhead %.2f, want 10", got)
	}
	var zero Result
	if zero.CyclesPerIter() != 0 || other.Overhead(zero) != 0 {
		t.Fatal("zero-value handling")
	}
}

func TestFioPatternsRoundTrip(t *testing.T) {
	m, err := xen.NewMachine(xen.Config{MemPages: 2048, CacheLines: 1024})
	if err != nil {
		t.Fatal(err)
	}
	x, err := xen.New(m)
	if err != nil {
		t.Fatal(err)
	}
	d, err := x.CreateDomain(xen.DomainConfig{Name: "fio", MemPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	dk := disk.New(256)
	if _, err := x.AttachBlockDevice(d, dk, 2, 1); err != nil {
		t.Fatal(err)
	}
	if err := x.WriteStartInfo(d); err != nil {
		t.Fatal(err)
	}
	open := func(g *xen.GuestEnv) (BlockDev, error) { return xen.NewBlockFrontend(g) }
	for _, pat := range []FioPattern{SeqWrite, SeqRead, RandWrite, RandRead} {
		var res FioResult
		x.StartVCPU(d, FioGuest(pat, 96, 192, open, &res))
		if err := x.Run(d); err != nil {
			t.Fatalf("%v: %v", pat, err)
		}
		if res.Sectors < 96 || res.Cycles == 0 {
			t.Fatalf("%v: empty result %+v", pat, res)
		}
		if res.CyclesPerSector() <= 0 {
			t.Fatalf("%v: bad per-sector cost", pat)
		}
	}
}

func TestFioRandomCostsMoreThanSequential(t *testing.T) {
	m, _ := xen.NewMachine(xen.Config{MemPages: 2048, CacheLines: 1024})
	x, _ := xen.New(m)
	d, _ := x.CreateDomain(xen.DomainConfig{Name: "fio", MemPages: 64})
	dk := disk.New(256)
	x.AttachBlockDevice(d, dk, 2, 1)
	x.WriteStartInfo(d)
	open := func(g *xen.GuestEnv) (BlockDev, error) { return xen.NewBlockFrontend(g) }
	run := func(p FioPattern) FioResult {
		var res FioResult
		x.StartVCPU(d, FioGuest(p, 96, 192, open, &res))
		if err := x.Run(d); err != nil {
			t.Fatal(err)
		}
		return res
	}
	seq := run(SeqRead)
	rnd := run(RandRead)
	if rnd.CyclesPerSector() < 5*seq.CyclesPerSector() {
		t.Fatalf("random reads (%.0f cyc/sec) should dwarf sequential (%.0f cyc/sec)",
			rnd.CyclesPerSector(), seq.CyclesPerSector())
	}
}

func TestPatternStrings(t *testing.T) {
	for p, want := range map[FioPattern]string{
		SeqRead: "seq-read", SeqWrite: "seq-write",
		RandRead: "rand-read", RandWrite: "rand-write",
	} {
		if p.String() != want {
			t.Errorf("%d: %q", int(p), p.String())
		}
		if p.PaperSlowdown() <= 0 {
			t.Errorf("%v lacks a paper value", p)
		}
	}
	if FioPattern(9).String() != "pattern(9)" || FioPattern(9).PaperSlowdown() != 0 {
		t.Error("unknown pattern handling")
	}
}
