// kvstore: the paper's motivating scenario end to end — a tenant service
// (a small key-value store) runs inside a Fidelius-protected VM and
// persists records through the protected I/O path. The hypervisor, the
// driver domain and the physical disk see only ciphertext; a second VM
// instance recovers the data from the (encrypted) disk after the first is
// shut down.
//
// Persistence across VM generations uses the AES-NI path with Kblk: the
// owner's block key is embedded in the (encrypted) kernel image, so every
// generation booted from the same image can read the disk. The SEV-API
// path's transport key is session-bound and suits scratch I/O instead.
//
// Run with: go run ./examples/kvstore
package main

import (
	"bytes"
	"fmt"
	"log"

	"fidelius"
	"fidelius/internal/kv"
)

const storeLBA = 8

func main() {
	plat, err := fidelius.NewPlatform(fidelius.Config{Protected: true})
	if err != nil {
		log.Fatal(err)
	}
	owner, _ := fidelius.NewOwner()
	dk := fidelius.NewDisk(512)

	records := map[string]string{
		"tenant/42/card":   "4111-1111-1111-1111",
		"tenant/42/email":  "alice@example.com",
		"tenant/7/apikey":  "sk-sup3rs3cr3t",
		"tenant/7/balance": "1,250.00",
	}

	// One owner image serves every generation: Kblk lives inside it.
	kernel := bytes.Repeat([]byte("KV-SERVICE-KERN!"), 256)
	bundle, _, err := fidelius.PrepareGuest(owner, plat.PlatformKey(), kernel, nil)
	if err != nil {
		log.Fatal(err)
	}
	openStore := func(plt *fidelius.Platform, vm *fidelius.Domain, g *fidelius.GuestEnv, format bool) (*kv.Store, error) {
		bf, err := fidelius.NewBlockFrontend(g)
		if err != nil {
			return nil, err
		}
		var kblk [32]byte
		kbase := plt.KernelBase(vm, bundle) * fidelius.PageSize
		if err := g.Read(kbase+fidelius.KblkOffset, kblk[:]); err != nil {
			return nil, err
		}
		dev, err := fidelius.NewAESNIFront(g, bf, kblk)
		if err != nil {
			return nil, err
		}
		if format {
			// A brand-new disk must be formatted: through an encrypting
			// front-end, unwritten sectors do not read back as zeros.
			if err := kv.Format(dev, storeLBA); err != nil {
				return nil, err
			}
		}
		return kv.Open(dev, storeLBA, 256)
	}

	// ---- First VM instance: write the records -----------------------
	vm, err := plat.LaunchVM("kv-1", 64, bundle)
	if err != nil {
		log.Fatal(err)
	}
	backend, err := plat.AttachDisk(vm, dk, 2, 1, nil)
	if err != nil {
		log.Fatal(err)
	}
	backend.SnoopEnabled = true

	plat.StartVCPU(vm, func(g *fidelius.GuestEnv) error {
		store, err := openStore(plat, vm, g, true)
		if err != nil {
			return err
		}
		for k, v := range records {
			if err := store.Put(k, []byte(v)); err != nil {
				return err
			}
		}
		return g.ConsolePrint(fmt.Sprintf("stored %d records", store.Len()))
	})
	if err := plat.Run(vm); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("vm-1 console: %s\n", plat.X.ConsoleLog(vm.ID))
	if err := plat.Shutdown(vm); err != nil {
		log.Fatal(err)
	}

	// ---- What the adversary got -------------------------------------
	leak := false
	for _, v := range records {
		if bytes.Contains(backend.Snoop, []byte(v)) || bytes.Contains(dk.Snapshot(), []byte(v)) {
			leak = true
		}
	}
	fmt.Printf("driver domain / disk saw any tenant record: %v\n", leak)

	// ---- Second VM instance: recover from the encrypted disk --------
	vm2, err := plat.LaunchVM("kv-2", 64, bundle)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := plat.AttachDisk(vm2, dk, 2, 1, nil); err != nil {
		log.Fatal(err)
	}
	plat.StartVCPU(vm2, func(g *fidelius.GuestEnv) error {
		store, err := openStore(plat, vm2, g, false)
		if err != nil {
			return err
		}
		for k, want := range records {
			got, err := store.Get(k)
			if err != nil {
				return fmt.Errorf("recover %q: %w", k, err)
			}
			if string(got) != want {
				return fmt.Errorf("recover %q: got %q", k, got)
			}
		}
		return g.ConsolePrint(fmt.Sprintf("recovered %d records", store.Len()))
	})
	if err := plat.Run(vm2); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("vm-2 console: %s\n", plat.X.ConsoleLog(vm2.ID))
	fmt.Println("tenant data survived a VM generation without ever being visible outside the guest")
}
