// Package parallel provides the bounded worker pool behind bulk page
// crypto: SEV LAUNCH_UPDATE / SEND_UPDATE / RECEIVE_UPDATE sweeps and
// migration pre-copy rounds fan page-granular encrypt/decrypt/measure
// work across it.
//
// The pool is deliberately dumb: ForEach runs fn(0..n-1) across at most
// Width goroutines and reports the lowest-index error. Callers own
// determinism — they write results into index-addressed slots during the
// parallel phase and fold order-sensitive state (measurement chains,
// sequence numbers, wire frames) serially afterwards, so output is
// byte-identical to a serial loop regardless of scheduling.
package parallel

import (
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"

	"fidelius/internal/telemetry"
)

// Pool bounds the concurrency of bulk operations. The zero value and the
// nil pool are both valid and run everything inline on the caller's
// goroutine.
type Pool struct {
	width int

	jobs    *telemetry.Counter
	workers *telemetry.Gauge
	hub     *telemetry.Hub
}

// New returns a pool of the given width. A width <= 0 picks GOMAXPROCS.
func New(width int) *Pool {
	if width <= 0 {
		width = runtime.GOMAXPROCS(0)
	}
	return &Pool{width: width}
}

// Width reports the maximum worker count. A nil or zero pool has width 1.
func (p *Pool) Width() int {
	if p == nil || p.width < 1 {
		return 1
	}
	return p.width
}

// SetWidth changes the worker bound (<= 0 resets to GOMAXPROCS). Not safe
// concurrently with ForEach; intended for setup and benchmarks.
func (p *Pool) SetWidth(width int) {
	if p == nil {
		return
	}
	if width <= 0 {
		width = runtime.GOMAXPROCS(0)
	}
	p.width = width
}

// Register publishes pool.jobs (items processed) and pool.workers (width
// of the last fan-out) on the registry.
func (p *Pool) Register(reg *telemetry.Registry) {
	if p == nil || reg == nil {
		return
	}
	p.jobs = reg.Counter("pool.jobs")
	p.workers = reg.Gauge("pool.workers")
}

// AttachHub wires the pool to a telemetry hub so every ForEach batch
// records a causal span (parented under whatever scope dispatched the
// bulk work — a VM launch, a migration round). Nil hub detaches.
func (p *Pool) AttachHub(h *telemetry.Hub) {
	if p == nil {
		return
	}
	p.hub = h
}

// ForEach runs fn(i) for every i in [0, n), using up to Width goroutines,
// and returns the error of the lowest failing index (matching what a
// serial loop that stops at the first failure would report). All n calls
// are attempted even after a failure — workers keep draining so callers
// can rely on every index having been visited exactly once.
func (p *Pool) ForEach(n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	width := p.Width()
	if width > n {
		width = n
	}
	if p != nil {
		p.jobs.Add(uint64(n))
		p.workers.Set(int64(width))
		sp := p.hub.OpenScope("pool-batch", 0, 0).
			Attr("jobs", strconv.Itoa(n)).
			Attr("width", strconv.Itoa(width))
		defer sp.Close()
	}
	if width == 1 {
		var firstErr error
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		return firstErr
	}

	var (
		next   atomic.Int64
		mu     sync.Mutex
		errIdx = -1
		errVal error
		wg     sync.WaitGroup
	)
	wg.Add(width)
	for w := 0; w < width; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					mu.Lock()
					if errIdx < 0 || i < errIdx {
						errIdx, errVal = i, err
					}
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	return errVal
}
