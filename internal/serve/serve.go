// Package serve is the multi-tenant request-serving front end: thousands
// of simulated clients issue get/put/delete against per-tenant
// Fidelius-protected VMs, each running the internal/kv store over the
// protected PV block path, with requests delivered through a
// sector-framed shared-memory ring signalled via event-channel ports.
//
// This is the paper's motivating scenario turned into a workload — a
// tenant service whose data stays confidential against the hypervisor —
// and simultaneously its attack surface: SEVered-style attacks abuse
// exactly such a guest-facing service, and "Insecure Until Proven
// Updated" shows why a client must verify the VM's launch measurement
// before provisioning any secret. Both concerns are first-class here:
// admission is attestation-gated (a client session verifies a VM-bound
// quote before its data key is ever enqueued; rejections land in the
// audit ledger), and every request is measured on the platform's cycle
// clock into labelled latency histograms with open-loop arrivals, so
// coordinated omission cannot hide tail latency.
package serve

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"math/rand"

	"fidelius/internal/core"
	"fidelius/internal/disk"
	"fidelius/internal/hw"
	"fidelius/internal/sev"
	"fidelius/internal/telemetry"
	"fidelius/internal/xen"
)

// Event-channel ports of one tenant domain (per-domain namespace).
const (
	// BlkPort is the PV block device's kick port.
	BlkPort = 1
	// DoorbellPort is the guest's "give me work" kick: the host fills
	// request frames inside this handler.
	DoorbellPort = 2
	// CompletionPort is the guest's "responses posted" kick: the host
	// drains response frames and records latencies inside this handler.
	CompletionPort = 3
)

// Config sizes one serving scenario.
type Config struct {
	// Tenants is the number of tenant VMs (default 8).
	Tenants int
	// ClientsPerTenant simulated client sessions per tenant (default 128).
	ClientsPerTenant int
	// OpsPerClient operations each client issues (default 2).
	OpsPerClient int
	// RatePerMCycle is each tenant's offered load in ops per million
	// cycles, Poisson arrivals (default 0.15 — roughly 70% of what a
	// log-structured put mix sustains through the seek-dominated disk
	// model, so latency shows queueing without unbounded backlog).
	RatePerMCycle float64
	// Window caps each client's in-flight ops (default 4).
	Window int
	// DeadlineCycles is the per-op latency deadline for timeout
	// accounting (default 16M cycles; 0 disables).
	DeadlineCycles uint64
	// PutFrac and DelFrac set the op mix beyond first-touch puts
	// (defaults 0.35 / 0.10; the remainder are gets).
	PutFrac, DelFrac float64
	// ValueBytes is the value size (default 48).
	ValueBytes int
	// Seed makes the generated load deterministic (default 1).
	Seed int64
	// MemPages per tenant VM (default 64).
	MemPages int
	// DataPages of PV block shared area (default 2).
	DataPages int
	// StoreSectors is the kv store region length (default 384).
	StoreSectors int
	// DiskSectors sizes each tenant's disk (default 512).
	DiskSectors int
	// RingFrames is the serve-ring depth per direction (default
	// DefaultRingFrames). Deeper rings pipeline more ops per doorbell
	// VMEXIT and feed larger kv group commits.
	RingFrames int
	// ReadCacheEntries sizes the guest's LRU of session-encrypted hot
	// values (0 = DefaultReadCacheEntries; negative disables the cache).
	ReadCacheEntries int
	// HoldBudgetCycles caps how long the fill handler may answer a
	// doorbell empty so more arrivals accumulate into one group commit
	// (0 = DefaultHoldBudgetCycles; negative disables holding — every
	// due op posts immediately).
	HoldBudgetCycles int64
	// KeySpace overrides the per-client key population (0 = the default
	// OpsPerClient/2+1). Small keyspaces make gets cache-friendly and
	// overwrites garbage-heavy.
	KeySpace int
	// Parallel schedules tenants with ScheduleParallel at Width slots.
	Parallel bool
	Width    int
	// TamperTenants lists tenant indices whose client holds a corrupted
	// expected measurement: admission must refuse them.
	TamperTenants []int
}

func (c Config) withDefaults() Config {
	if c.Tenants <= 0 {
		c.Tenants = 8
	}
	if c.ClientsPerTenant <= 0 {
		c.ClientsPerTenant = 128
	}
	if c.OpsPerClient <= 0 {
		c.OpsPerClient = 2
	}
	if c.RatePerMCycle <= 0 {
		c.RatePerMCycle = 0.15
	}
	if c.Window <= 0 {
		c.Window = 4
	}
	if c.DeadlineCycles == 0 {
		c.DeadlineCycles = 16 << 20
	}
	if c.PutFrac == 0 {
		c.PutFrac = 0.35
	}
	if c.DelFrac == 0 {
		c.DelFrac = 0.10
	}
	if c.ValueBytes <= 0 {
		c.ValueBytes = 48
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.MemPages <= 0 {
		c.MemPages = 64
	}
	if c.DataPages <= 0 {
		c.DataPages = 2
	}
	if c.StoreSectors <= 0 {
		c.StoreSectors = 384
	}
	if c.DiskSectors <= 0 {
		c.DiskSectors = 512
	}
	if c.RingFrames <= 0 {
		c.RingFrames = DefaultRingFrames
	}
	if c.ReadCacheEntries == 0 {
		c.ReadCacheEntries = DefaultReadCacheEntries
	}
	if c.HoldBudgetCycles == 0 {
		c.HoldBudgetCycles = DefaultHoldBudgetCycles
	}
	return c
}

// DefaultReadCacheEntries sizes each tenant guest's read cache of
// session-encrypted hot values.
const DefaultReadCacheEntries = 128

// DefaultHoldBudgetCycles bounds the extra delay one batch formation
// may add by answering doorbells empty — ~3/8 of the serve-p50
// objective, so holding alone cannot burn the SLO, yet comfortably
// above the commit's two-seek cost it amortises (measured on the
// put-heavy sweep: this budget holds hundreds of times per run and
// halves p50 at 1.6 ops/Mcycle/tenant).
const DefaultHoldBudgetCycles = 3 << 20

// adaptAmortCycles is the arrival window the fill handler tries to
// gather into one group commit — about ten write-seeks' worth of
// cycles, so the commit's two seeks amortise to noise across the batch.
const adaptAmortCycles = float64(4 << 20)

// tenant is one tenant VM plus its client-side session state. All fields
// below the setup section are mutated only inside the domain's event
// handlers — which the event bus invokes under the machine's gate lock —
// or after scheduling has finished.
type tenant struct {
	idx    int
	name   string
	dom    *xen.Domain
	bundle *core.GuestBundle
	disk   *disk.Disk
	kbase  uint64 // kernel base GPA

	// Client-side admission state.
	expectMeasure [32]byte // what the client believes the image measures
	admitted      bool
	rejected      bool
	dataKey       [32]byte

	// Ring plumbing: per-direction shared pages and the frame depth.
	reqPAs, respPAs []hw.PhysAddr
	frames          int

	// Injection / completion state (handler-owned).
	gen      *loadGen
	pending  map[uint64]*genOp
	nextID   uint64
	keySent  bool
	keyAcked bool

	// Adaptive-depth state (handler-owned): a smoothed interarrival gap
	// measured as ops are injected, the cycle the current hold streak
	// began (0 = not holding), and the hold count.
	arrEWMA   float64
	lastArr   uint64
	holdSince uint64
	holds     uint64

	// Stats (handler-owned until Run returns).
	ops, gets, puts, dels             uint64
	timeouts, mismatches, stray, errs uint64
	lat                               *telemetry.Histogram
}

// observeArrival feeds the fill handler's interarrival EWMA. Window
// skips can inject slightly out of arrival order, so negative gaps are
// clamped rather than wrapped.
func (t *tenant) observeArrival(arr uint64) {
	if t.lastArr != 0 {
		gap := float64(int64(arr) - int64(t.lastArr))
		if gap < 0 {
			gap = 0
		}
		if t.arrEWMA == 0 {
			t.arrEWMA = gap
		} else {
			t.arrEWMA += 0.2 * (gap - t.arrEWMA)
		}
	}
	t.lastArr = arr
}

// depthTarget converts the measured arrival rate into the batch size
// worth waiting for: the arrivals expected inside adaptAmortCycles,
// clamped to [1, ring frames]. A trickle tenant gets target 1 (no
// holding, minimum latency); a saturating one gets the full ring.
func (t *tenant) depthTarget() int {
	if t.arrEWMA <= 0 {
		return 1
	}
	d := int(adaptAmortCycles / t.arrEWMA)
	if d < 1 {
		d = 1
	}
	if d > t.frames {
		d = t.frames
	}
	return d
}

// Service is one multi-tenant serving scenario bound to a platform.
type Service struct {
	X   *xen.Xen
	F   *core.Fidelius
	cfg Config

	tenants []*tenant
	started uint64 // cycle clock at Run
	elapsed uint64
	ran     bool
}

// ErrNotProtected reports service creation on an unprotected platform.
var ErrNotProtected = errors.New("serve: serving requires a Fidelius-protected platform")

func (s *Service) hub() *telemetry.Hub { return s.X.M.Ctl.Telem }

// New builds the scenario: for every tenant it prepares an owner image,
// launches the protected VM, attaches the encrypted disk, maps the serve
// ring, runs the attestation-gated admission handshake, and publishes the
// start info. Tenants whose admission fails stay launched but rejected —
// their guests stop without ever seeing a data key.
func New(f *core.Fidelius, cfg Config) (*Service, error) {
	if f == nil {
		return nil, ErrNotProtected
	}
	cfg = cfg.withDefaults()
	s := &Service{X: f.X, F: f, cfg: cfg}
	owner, err := sev.NewOwner()
	if err != nil {
		return nil, err
	}
	platformPub, err := s.X.M.FW.PublicKey()
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	tampered := make(map[int]bool, len(cfg.TamperTenants))
	for _, i := range cfg.TamperTenants {
		tampered[i] = true
	}
	serveGFN := uint64(xen.BlkDataGFN + cfg.DataPages)
	kernel := make([]byte, hw.PageSize)
	copy(kernel, "FIDELIUS-SERVE-TENANT-KERNEL")

	for i := 0; i < cfg.Tenants; i++ {
		t := &tenant{
			idx:     i,
			name:    fmt.Sprintf("tenant-%d", i),
			pending: make(map[uint64]*genOp),
			nextID:  1,
		}
		// Every tenant boots its own owner bundle: transport keys are
		// fresh per image, so every tenant has a distinct launch
		// measurement for admission to check.
		bundle, _, err := core.PrepareGuest(owner, platformPub, kernel, nil)
		if err != nil {
			return nil, err
		}
		t.bundle = bundle
		t.expectMeasure = [32]byte(bundle.Image.Measurement)
		if tampered[i] {
			t.expectMeasure[0] ^= 0xA5 // supply-chain / rollback tampering
		}

		d, err := f.LaunchVM(t.name, cfg.MemPages, bundle)
		if err != nil {
			return nil, err
		}
		t.dom = d
		t.kbase = f.KernelBase(d, bundle) * hw.PageSize
		t.disk = disk.New(cfg.DiskSectors)
		if _, err := f.AttachProtectedDisk(d, t.disk, cfg.DataPages, BlkPort, nil); err != nil {
			return nil, err
		}
		// The serve ring rides directly after the block data pages; its
		// sharing must be pre-declared to the gatekeeper like any other.
		t.frames = cfg.RingFrames
		pagesPerDir := ringPagesPerDir(t.frames)
		ringPages := 2 * pagesPerDir
		if err := f.PreShare(d.ID, xen.Dom0, serveGFN, uint64(ringPages), 0); err != nil {
			return nil, err
		}
		pas, err := s.X.SharePages(d, serveGFN, ringPages)
		if err != nil {
			return nil, err
		}
		t.reqPAs, t.respPAs = pas[:pagesPerDir], pas[pagesPerDir:]
		d.Info.ServeGFN = serveGFN
		d.Info.ServePort = DoorbellPort
		d.Info.ServeFrames = uint64(t.frames)
		// Both devices are attached; publish the write-once start info.
		if err := s.X.WriteStartInfo(d); err != nil {
			return nil, err
		}
		s.X.Events.Bind(d.ID, DoorbellPort, s.fillHandler(t))
		s.X.Events.Bind(d.ID, CompletionPort, s.drainHandler(t))

		t.gen = buildLoad(i, cfg.ClientsPerTenant, cfg.OpsPerClient, cfg.KeySpace,
			cfg.RatePerMCycle, cfg.PutFrac, cfg.DelFrac, cfg.ValueBytes, cfg.Window,
			rand.New(rand.NewSource(cfg.Seed+int64(i)+1)))
		t.lat = s.hub().Reg.Histogram("serve.latency", telemetry.ServeLatencyBuckets, "tenant", t.name)

		// Attestation-gated admission: verify first, then (and only
		// then) provision the session data key.
		s.admit(t, rng)
		s.tenants = append(s.tenants, t)
	}
	return s, nil
}

// Run schedules every tenant VM until all sessions drain, then records
// the elapsed cycle window for throughput accounting. Serial by default
// (deterministic); cfg.Parallel uses the concurrent scheduler.
func (s *Service) Run() map[xen.DomID]error {
	start := s.hub().Now()
	s.started = start
	doms := make([]*xen.Domain, 0, len(s.tenants))
	for _, t := range s.tenants {
		t.gen.rebase(start)
		s.X.StartVCPU(t.dom, s.guestMain(t))
		doms = append(doms, t.dom)
	}
	var errs map[xen.DomID]error
	if s.cfg.Parallel {
		errs = s.X.ScheduleParallel(doms, s.cfg.Width)
	} else {
		errs = s.X.Schedule(doms)
	}
	s.elapsed = s.hub().Now() - start
	s.ran = true
	return errs
}

// Shutdown tears the tenant VMs down.
func (s *Service) Shutdown() error {
	for _, t := range s.tenants {
		if err := s.F.ShutdownVM(t.dom); err != nil {
			return err
		}
	}
	return nil
}

// readPA / writePA move one sector between host memory and a buffer, the
// same untrusted-host path the block backend uses.
func (s *Service) readPA(pa hw.PhysAddr, buf []byte) error {
	return s.X.M.Ctl.Read(hw.Access{PA: pa}, buf)
}

func (s *Service) writePA(pa hw.PhysAddr, data []byte) error {
	return s.X.M.Ctl.Write(hw.Access{PA: pa}, data)
}

// sessionDone reports whether a tenant will never produce more work.
func (t *tenant) sessionDone() bool {
	if t.rejected {
		return true
	}
	return t.keyAcked && t.gen.exhausted() && len(t.pending) == 0
}

// fillHandler services the guest's doorbell: it injects every due
// request (admission key first, then open-loop arrivals) into the ring
// frames and publishes the batch count, setting the stop flag once the
// session has fully drained. Runs in host context under the machine's
// gate lock, while the guest vCPU is parked in the hypercall exit.
//
// The posted batch size is adaptive. The handler tracks the tenant's
// arrival rate (EWMA of interarrival gaps) and from it a depth target:
// how many ops arrive inside adaptAmortCycles. When mutations are due
// but fewer than the target, it may answer the doorbell *empty* — the
// guest halts a quantum and rings again, by which time more arrivals
// are due — so the eventual group commit carries a deeper span and its
// two write seeks amortise further. The hold is bounded by what the
// hold itself adds: once the handler has answered empty for
// HoldBudgetCycles since the streak began, the batch posts no matter
// how shallow. The budget deliberately ignores how long the oldest op
// has already queued — that delay is sunk, and gating on it would shut
// the policy off exactly at saturation, where batch formation pays the
// most. A hold is also refused outright once the schedule has no
// arrivals left beyond now: the batch can never get deeper, so waiting
// would burn the whole budget as dead time at the tail of a run. At a
// trickle the target is 1 and every op posts immediately.
func (s *Service) fillHandler(t *tenant) func() error {
	return func() error {
		hub := s.hub()
		now := hub.Now()
		var frame [SectorSize]byte
		n := uint32(0)
		if t.admitted && !t.keySent {
			// The session data key goes first — and only exists on an
			// admitted session.
			if err := encodeRequest(frame[:], 0, OpInstallKey, "", t.dataKey[:]); err != nil {
				return err
			}
			if err := s.writePA(framePA(t.reqPAs, n+1), frame[:]); err != nil {
				return err
			}
			t.pending[0] = &genOp{kind: OpInstallKey, arrival: now}
			t.keySent = true
			n++
		}
		if t.keySent {
			if n == 0 && s.cfg.HoldBudgetCycles > 0 {
				due, muts, future := t.gen.duePressure(now, t.frames)
				if muts > 0 && future && due < t.depthTarget() {
					if t.holdSince == 0 {
						t.holdSince = now
					}
					if now-t.holdSince < uint64(s.cfg.HoldBudgetCycles) {
						t.holds++
						hub.M.ServeHolds.Inc()
						var ctl [SectorSize]byte
						encodeReqCtl(ctl[:], 0, 0)
						return s.writePA(framePA(t.reqPAs, 0), ctl[:])
					}
				}
			}
			t.holdSince = 0
			for n < uint32(t.frames) {
				op := t.gen.nextDue(now)
				if op == nil {
					break
				}
				id := t.nextID
				t.nextID++
				t.gen.markInjected(op, id)
				t.observeArrival(op.arrival)
				// Values cross the host-visible ring encrypted under the
				// session key the client minted at admission.
				payload := op.val
				if op.kind == OpPut {
					payload = append([]byte{}, op.val...)
					xorSession(t.dataKey, op.key, payload)
				}
				if err := encodeRequest(frame[:], id, op.kind, op.key, payload); err != nil {
					return err
				}
				if err := s.writePA(framePA(t.reqPAs, n+1), frame[:]); err != nil {
					return err
				}
				t.pending[id] = op
				if hub.Tracing() {
					hub.EmitDetail(telemetry.KindServeReq, uint32(t.dom.ID), uint32(t.dom.ASID),
						0, id, uint64(op.kind), OpName(op.kind))
				}
				n++
			}
		}
		var flags uint32
		if n == 0 && t.sessionDone() {
			flags = FlagStop
		}
		if n > 0 {
			hub.M.ServeBatchDepth.Observe(uint64(n))
		}
		var ctl [SectorSize]byte
		encodeReqCtl(ctl[:], n, flags)
		return s.writePA(framePA(t.reqPAs, 0), ctl[:])
	}
}

// drainHandler services the guest's completion kick: it matches response
// frames to pending ops, records arrival-to-response latency into the
// global and per-tenant histograms, emits the serve-request span parented
// under the scheduler quantum that completed it, and accounts deadlines
// and response correctness. Runs under the machine's gate lock.
func (s *Service) drainHandler(t *tenant) func() error {
	return func() error {
		hub := s.hub()
		var ctl [SectorSize]byte
		if err := s.readPA(framePA(t.respPAs, 0), ctl[:]); err != nil {
			return err
		}
		count, err := decodeRespCtl(ctl[:])
		if err != nil {
			return err
		}
		if count > uint32(t.frames) {
			return fmt.Errorf("serve: guest posted %d responses", count)
		}
		now := hub.Now()
		var frame [SectorSize]byte
		for i := uint32(0); i < count; i++ {
			if err := s.readPA(framePA(t.respPAs, i+1), frame[:]); err != nil {
				return err
			}
			id, status, val, err := decodeResponse(frame[:])
			if err != nil {
				return err
			}
			op, ok := t.pending[id]
			if !ok {
				t.stray++
				continue
			}
			delete(t.pending, id)
			if op.kind == OpInstallKey {
				if status == StatusOK {
					t.keyAcked = true
				}
				continue
			}
			t.gen.markDone(op)
			lat := now - op.arrival
			// serve.ops counts ops answered definitively (found or
			// not-found) — the same rule the guest's console accounting
			// uses, so the two agree even on runs where commits fail and
			// ops come back errored.
			if status == StatusOK || status == StatusNotFound {
				hub.M.ServeOps.Inc()
			} else {
				t.errs++
			}
			hub.M.ServeLatency.Observe(lat)
			t.lat.Observe(lat)
			t.ops++
			switch op.kind {
			case OpGet:
				t.gets++
			case OpPut:
				t.puts++
			case OpDelete:
				t.dels++
			}
			if s.cfg.DeadlineCycles > 0 && lat > s.cfg.DeadlineCycles {
				hub.M.ServeTimeouts.Inc()
				t.timeouts++
			}
			if op.kind == OpGet && status == StatusOK {
				xorSession(t.dataKey, op.key, val) // ring carries ciphertext
			}
			if !responseOK(op, status, val) {
				t.mismatches++
			}
			if hub.Tracing() {
				hub.CompleteSpan("serve-request", uint32(t.dom.ID), uint32(t.dom.ASID),
					hub.Ambient(), op.arrival, now,
					telemetry.Attr{Key: "tenant", Val: t.name},
					telemetry.Attr{Key: "op", Val: OpName(op.kind)})
				hub.EmitDetail(telemetry.KindServeDone, uint32(t.dom.ID), uint32(t.dom.ASID),
					lat, id, lat, OpName(op.kind))
			}
		}
		// Zero the count so a duplicate kick cannot double-account.
		encodeRespCtl(ctl[:], 0)
		return s.writePA(framePA(t.respPAs, 0), ctl[:])
	}
}

// responseOK checks one response against the client's model of its own
// writes (per-client FIFO makes the expectation exact at injection time).
func responseOK(op *genOp, status uint32, val []byte) bool {
	switch op.kind {
	case OpPut, OpDelete:
		return status == StatusOK
	case OpGet:
		if op.expectMiss {
			return status == StatusNotFound
		}
		return status == StatusOK && string(val) == string(op.expect)
	}
	return false
}

// sessionKeystream derives the XOR keystream block i for a record key
// under the session data key — shared by the guest (encrypt on put,
// decrypt on get) and by tests proving ring/disk bytes are ciphertext.
func sessionKeystream(dataKey [32]byte, recordKey string, block int) [32]byte {
	h := sha256.New()
	h.Write(dataKey[:])
	h.Write([]byte(recordKey))
	var ctr [8]byte
	for j := 0; j < 8; j++ {
		ctr[j] = byte(uint64(block) >> (8 * j))
	}
	h.Write(ctr[:])
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

// xorSession applies the session cipher in place over data.
func xorSession(dataKey [32]byte, recordKey string, data []byte) {
	for i := 0; i < len(data); i += 32 {
		ks := sessionKeystream(dataKey, recordKey, i/32)
		for j := i; j < i+32 && j < len(data); j++ {
			data[j] ^= ks[j-i]
		}
	}
}
