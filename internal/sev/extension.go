package sev

import (
	"crypto/ecdh"
	"errors"
	"fmt"

	"fidelius/internal/cycles"
	"fidelius/internal/hw"
)

// This file implements the paper's second hardware suggestion (Section 8,
// "Customized keys"): a SETENC_GEK instruction that installs a guest
// encryption key chosen by the guest owner, plus ENC and DEC commands
// that re-encrypt memory ranges between the GEK and the Kvek directly —
// without the SEND/RECEIVE state machine, without the s-dom/r-dom helper
// contexts, and without pre-identifying the single target machine during
// image preparation.
//
// With the GEK extension:
//
//   - the owner encrypts the kernel image under a key of its own choosing
//     (portable to any SETENC_GEK-capable platform), and
//   - the I/O path needs only one firmware context per guest, in the
//     running state.

// GEK is a customized guest encryption key.
type GEK = [32]byte

// ErrNoGEK reports ENC/DEC on a context with no customized key installed.
var ErrNoGEK = errors.New("sev: no customized key (GEK) installed")

// gekCipher derives the stream cipher state for a GEK; sequence-tweaked
// CTR, like the transport path.
func gekXOR(key GEK, seq uint64, data []byte) error {
	return transportXOR(key, seq, data)
}

// SetEncGEK installs a customized guest encryption key into the guest's
// firmware context — the proposed SETENC_GEK instruction. The key arrives
// wrapped under the owner-platform ECDH agreement, so the hypervisor
// relaying it learns nothing.
func (f *Firmware) SetEncGEK(h Handle, wrapped WrappedKeys, ownerPub *ecdh.PublicKey, nonce []byte) error {
	c, err := f.ctx(h)
	if err != nil {
		return err
	}
	shared, err := ECDHAgree(f.priv, ownerPub)
	if err != nil {
		return err
	}
	tk, err := unwrapKeys(deriveKEK(shared, nonce), wrapped)
	if err != nil {
		return err
	}
	c.gek = tk.TEK
	c.gekSet = true
	f.charge(cycles.SEVCommand)
	f.command("setenc-gek", h)
	return nil
}

// Enc re-encrypts n bytes of guest memory at pa from Kvek to the GEK and
// returns the ciphertext — the proposed ENC instruction. Unlike
// SEND_UPDATE it works in the running state.
func (f *Firmware) Enc(h Handle, pa hw.PhysAddr, n int, seq uint64) ([]byte, error) {
	c, err := f.ctx(h)
	if err != nil {
		return nil, err
	}
	if !c.gekSet {
		return nil, ErrNoGEK
	}
	if pa%hw.BlockSize != 0 || n%hw.BlockSize != 0 {
		return nil, ErrNotAligned
	}
	buf := make([]byte, n)
	if err := f.ctl.Mem.ReadRaw(pa, buf); err != nil {
		return nil, err
	}
	for b := 0; b < n; b += hw.BlockSize {
		c.cipher.DecryptBlock(pa+hw.PhysAddr(b), buf[b:b+hw.BlockSize])
	}
	if err := gekXOR(c.gek, seq, buf); err != nil {
		return nil, err
	}
	f.charge(uint64(n) / hw.BlockSize * cycles.AESBlockSEV)
	f.command("enc", h)
	return buf, nil
}

// Dec decrypts GEK ciphertext and writes it Kvek-encrypted at pa — the
// proposed DEC instruction. Also legal in the running state.
func (f *Firmware) Dec(h Handle, pa hw.PhysAddr, data []byte, seq uint64) error {
	c, err := f.ctx(h)
	if err != nil {
		return err
	}
	if !c.gekSet {
		return ErrNoGEK
	}
	if pa%hw.BlockSize != 0 || len(data)%hw.BlockSize != 0 {
		return ErrNotAligned
	}
	plain := append([]byte{}, data...)
	if err := gekXOR(c.gek, seq, plain); err != nil {
		return err
	}
	for b := 0; b < len(plain); b += hw.BlockSize {
		c.cipher.EncryptBlock(pa+hw.PhysAddr(b), plain[b:b+hw.BlockSize])
	}
	f.charge(uint64(len(plain)) / hw.BlockSize * cycles.AESBlockSEV)
	f.command("dec", h)
	return f.ctl.FirmwareWrite(pa, plain)
}

// DecPage is the page-granularity DEC used to boot from a GEK-encrypted
// image: one command per page, seq = page index within the image.
func (f *Firmware) DecPage(h Handle, pfn hw.PFN, data []byte, seq uint64) error {
	if len(data) != hw.PageSize {
		return fmt.Errorf("sev: DecPage needs a full page, got %d bytes", len(data))
	}
	f.charge(cycles.SEVCommand + cycles.PageCopy)
	return f.Dec(h, pfn.Addr(), data, seq)
}

// GEKImage is a portable encrypted kernel image: pages under the owner's
// GEK, usable on any platform the owner later authorises by wrapping the
// GEK for it. Confidentiality only — pair with the integrity engine for
// tamper evidence (both Section 8 suggestions compose).
type GEKImage struct {
	Pages [][]byte
}

// NumPages reports the image size in pages.
func (img *GEKImage) NumPages() int { return len(img.Pages) }

// PrepareGEKImage encrypts a kernel under a fresh GEK. Unlike
// PrepareImage, no platform key is needed at build time.
func (o *Owner) PrepareGEKImage(kernel []byte) (*GEKImage, GEK, error) {
	gek, err := randomKey()
	if err != nil {
		return nil, GEK{}, err
	}
	pages := (len(kernel) + hw.PageSize - 1) / hw.PageSize
	img := &GEKImage{}
	for i := 0; i < pages; i++ {
		page := make([]byte, hw.PageSize)
		copy(page, kernel[i*hw.PageSize:])
		if err := gekXOR(gek, uint64(i), page); err != nil {
			return nil, GEK{}, err
		}
		img.Pages = append(img.Pages, page)
	}
	return img, gek, nil
}

// WrapGEK wraps the GEK for a specific platform at deployment time — the
// late-binding step the extension enables.
func (o *Owner) WrapGEK(platformPub *ecdh.PublicKey, gek GEK) (WrappedKeys, error) {
	shared, err := ECDHAgree(o.priv, platformPub)
	if err != nil {
		return WrappedKeys{}, err
	}
	// Reuse the TEK slot of the transport wrap; TIK is unused.
	return wrapKeys(deriveKEK(shared, o.nonce[:]), TransportKeys{TEK: gek})
}
