package kv

import "errors"

// CoalesceStats counts what the coalescer did to the write stream. The
// interesting ratio is SeqWrites/Writes — how much of the store's write
// traffic arrived adjacent to the pending span and merged into it — and
// GroupCommits, the number of flushed requests that carried more than
// one logical write.
type CoalesceStats struct {
	Writes       uint64 // WriteSectors calls observed
	SeqWrites    uint64 // calls merged onto the tail of the pending span
	Flushes      uint64 // requests issued to the underlying device
	GroupCommits uint64 // flushed requests that merged >= 2 calls
	MaxSpan      int    // largest single request, in sectors
}

// WriteCoalescer is a small write-behind buffer between the store and a
// block front-end. Writes whose LBA lands exactly at the tail of the
// pending span are appended to it; anything else (or an overlapping
// read, or an explicit Flush) pushes the span to the device as one
// sequential WriteSectors request. Under the seek model in
// internal/xen/blkio.go a span of N adjacent records then costs at most
// one seek instead of N.
//
// The coalescer is not a cache: reads that do not overlap the pending
// span pass straight through, and Flush is the only durability point —
// the Store inserts its own barriers (see Store.Apply).
type WriteCoalescer struct {
	dev    BlockDev
	lba    uint64 // start of the pending span
	buf    []byte // pending span payload
	max    int    // span cap, sectors
	merged int    // logical writes in the pending span
	stats  CoalesceStats
}

// DefaultCoalesceSectors caps the pending span. It comfortably covers a
// full serve-ring batch of small records while staying within a couple
// of block-layer data windows.
const DefaultCoalesceSectors = 32

// NewWriteCoalescer wraps dev with a write-behind span of up to
// maxSectors sectors (DefaultCoalesceSectors when <= 0).
func NewWriteCoalescer(dev BlockDev, maxSectors int) *WriteCoalescer {
	if maxSectors <= 0 {
		maxSectors = DefaultCoalesceSectors
	}
	return &WriteCoalescer{
		dev: dev,
		max: maxSectors,
		buf: make([]byte, 0, maxSectors*SectorSize),
	}
}

func (c *WriteCoalescer) end() uint64 { return c.lba + uint64(len(c.buf)/SectorSize) }

// WriteSectors buffers or merges the write; only non-adjacent writes and
// span overflow reach the device immediately.
func (c *WriteCoalescer) WriteSectors(lba uint64, data []byte) error {
	if len(data) == 0 || len(data)%SectorSize != 0 {
		return errors.New("kv: coalesced write is not sector aligned")
	}
	c.stats.Writes++
	if len(c.buf) > 0 && lba == c.end() && len(c.buf)+len(data) <= c.max*SectorSize {
		c.buf = append(c.buf, data...)
		c.merged++
		c.stats.SeqWrites++
		return nil
	}
	if err := c.Flush(); err != nil {
		return err
	}
	if len(data) >= c.max*SectorSize {
		// Oversized span: already as sequential as it gets, pass through.
		c.stats.Flushes++
		if n := len(data) / SectorSize; n > c.stats.MaxSpan {
			c.stats.MaxSpan = n
		}
		return c.dev.WriteSectors(lba, data)
	}
	c.lba = lba
	c.buf = append(c.buf[:0], data...)
	c.merged = 1
	return nil
}

// ReadSectors reads through the coalescer. A read overlapping the
// pending span flushes it first so the caller sees its own writes;
// disjoint reads do not disturb the span.
func (c *WriteCoalescer) ReadSectors(lba uint64, buf []byte) error {
	if len(c.buf) > 0 {
		n := uint64((len(buf) + SectorSize - 1) / SectorSize)
		if lba < c.end() && lba+n > c.lba {
			if err := c.Flush(); err != nil {
				return err
			}
		}
	}
	return c.dev.ReadSectors(lba, buf)
}

// Flush pushes the pending span to the device as one request.
func (c *WriteCoalescer) Flush() error {
	if len(c.buf) == 0 {
		return nil
	}
	c.stats.Flushes++
	if c.merged > 1 {
		c.stats.GroupCommits++
	}
	if n := len(c.buf) / SectorSize; n > c.stats.MaxSpan {
		c.stats.MaxSpan = n
	}
	err := c.dev.WriteSectors(c.lba, c.buf)
	c.buf = c.buf[:0]
	c.merged = 0
	return err
}

// Stats returns a snapshot of the coalescer's counters.
func (c *WriteCoalescer) Stats() CoalesceStats { return c.stats }
