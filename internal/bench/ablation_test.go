package bench

import (
	"strings"
	"testing"

	"fidelius/internal/workload"
	"fidelius/internal/xen"
)

func TestGateAblation(t *testing.T) {
	a, err := MeasureGateAblation(50)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's argument: the CR3-switch approach is far more
	// expensive than both gates, which is why Fidelius avoids it.
	if a.CR3Switch < 5*a.WPToggle {
		t.Errorf("CR3 switch (%d) should dwarf the WP toggle (%d)", a.CR3Switch, a.WPToggle)
	}
	if a.WPToggle != 306 || a.AddMapping != 339 {
		t.Errorf("gate costs %d/%d, want 306/339", a.WPToggle, a.AddMapping)
	}
	if !strings.Contains(a.String(), "CR3 switch") {
		t.Error("ablation string")
	}
}

func TestNPTAblation(t *testing.T) {
	a, err := MeasureNPTAblation(48)
	if err != nil {
		t.Fatal(err)
	}
	// Eager population does the work at boot, batched: no runtime NPT
	// violations. Lazy pays one violation (plus gates) per touched page.
	if a.EagerNPF != 0 {
		t.Errorf("eager population took %d NPT violations at runtime, want 0", a.EagerNPF)
	}
	if a.LazyNPF < uint64(a.WorkingPages) {
		t.Errorf("lazy population took %d NPT violations, want >= %d", a.LazyNPF, a.WorkingPages)
	}
	if a.LazyRun <= a.EagerRun {
		t.Errorf("lazy runtime (%d) should exceed eager runtime (%d)", a.LazyRun, a.EagerRun)
	}
	if a.EagerBoot <= a.LazyBoot {
		t.Errorf("eager boot (%d) should exceed lazy boot (%d)", a.EagerBoot, a.LazyBoot)
	}
	if !strings.Contains(a.String(), "eager") {
		t.Error("ablation string")
	}
}

func TestShadowVsTrapModel(t *testing.T) {
	// With even a handful of VMCB accesses per exit, trapping each one
	// costs more than shadowing once — the paper's §5.1 rationale.
	m := ModelShadowVsTrap(5)
	if m.TrapCost <= m.ShadowCost {
		t.Errorf("trap (%d) should exceed shadow (%d) at 5 accesses/exit", m.TrapCost, m.ShadowCost)
	}
	// At zero accesses trapping is free; the crossover exists.
	if z := ModelShadowVsTrap(0); z.TrapCost != 0 {
		t.Error("zero accesses should cost nothing under trapping")
	}
	if !strings.Contains(m.String(), "shadow") {
		t.Error("model string")
	}
}

func TestFioSEVPath(t *testing.T) {
	base, sevRes, err := MeasureFioSEVPath(workload.SeqWrite, 160)
	if err != nil {
		t.Fatal(err)
	}
	slow := sevRes.Slowdown(base)
	// The SEV path adds firmware-command latency per request; it should
	// cost something but stay moderate on sequential writes.
	if slow < 0 || slow > 60 {
		t.Errorf("SEV I/O path slowdown %.2f%%, want a moderate positive value", slow)
	}
}

func TestPagingAblation(t *testing.T) {
	a, err := MeasurePagingAblation(256)
	if err != nil {
		t.Fatal(err)
	}
	if a.NestedCycles <= a.FlatCycles {
		t.Fatalf("nested walk (%d) should cost more than flat (%d)", a.NestedCycles, a.FlatCycles)
	}
}

func TestSchedulerCycleAttribution(t *testing.T) {
	p, err := NewPlatform(ConfigXen, 32)
	if err != nil {
		t.Fatal(err)
	}
	light := p.D
	heavy, err := p.X.CreateDomain(xen.DomainConfig{Name: "heavy", MemPages: 32})
	if err != nil {
		t.Fatal(err)
	}
	p.X.StartVCPU(light, func(g *xen.GuestEnv) error {
		g.Charge(1_000)
		_, err := g.Hypercall(xen.HCVoid)
		return err
	})
	p.X.StartVCPU(heavy, func(g *xen.GuestEnv) error {
		g.Charge(900_000)
		_, err := g.Hypercall(xen.HCVoid)
		return err
	})
	if errs := p.X.Schedule([]*xen.Domain{light, heavy}); len(errs) != 0 {
		t.Fatal(errs)
	}
	if p.X.DomainCycles(heavy.ID) < 5*p.X.DomainCycles(light.ID) {
		t.Fatalf("attribution wrong: heavy=%d light=%d",
			p.X.DomainCycles(heavy.ID), p.X.DomainCycles(light.ID))
	}
}

func TestCSVExport(t *testing.T) {
	rows := []FigRow{{Name: "mcf", Fid: 0.8, Enc: 17.6, PaperFid: 0.9, PaperEnc: 17.3}}
	var fig strings.Builder
	if err := WriteFigureCSV(&fig, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(fig.String(), "mcf,0.800,17.600,0.900,17.300") {
		t.Fatalf("figure csv:\n%s", fig.String())
	}
	if !strings.Contains(fig.String(), "average") {
		t.Fatal("average row missing")
	}
	fio := []FioRow{{Pattern: workload.SeqRead, BaseCycles: 8000, FidCycles: 9600, Slowdown: 20, PaperSlowdown: 22.91}}
	var tbl strings.Builder
	if err := WriteFioCSV(&tbl, fio); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tbl.String(), "seq-read,8000.0,9600.0,20.000,22.910") {
		t.Fatalf("fio csv:\n%s", tbl.String())
	}
	if len(FioPatterns) != 4 {
		t.Fatal("pattern list")
	}
}
