package xen

import (
	"fmt"
	"sync/atomic"

	"fidelius/internal/cpu"
	"fidelius/internal/hw"
	"fidelius/internal/lockrank"
	"fidelius/internal/mmu"
	"fidelius/internal/sev"
)

// DomID identifies a domain. Dom0 (the management VM / driver domain) is 0.
type DomID uint16

// Dom0 is the management domain's ID.
const Dom0 DomID = 0

// StartInfoSize is the size of the marshalled start-info record.
const StartInfoSize = 72

// StartInfo is the boot-parameter page written once during domain build —
// the target of the paper's write-once policy (Section 5.3).
type StartInfo struct {
	DomID       DomID
	MemPages    uint64
	RingGFN     uint64 // PV block ring page (guest frame number)
	DataGFN     uint64 // first PV block data page
	DataLen     uint64 // number of data pages
	Port        uint32 // event channel port for block I/O
	ServeGFN    uint64 // first serve-ring page (0 = no serving device)
	ServePort   uint32 // event channel doorbell port for the serve ring
	ServeFrames uint64 // serve-ring frames per direction (0 = legacy 7)
}

// Marshal encodes the start info.
func (si *StartInfo) Marshal() []byte {
	b := make([]byte, StartInfoSize)
	put := func(off int, v uint64) {
		for i := 0; i < 8; i++ {
			b[off+i] = byte(v >> (8 * i))
		}
	}
	put(0, uint64(si.DomID))
	put(8, si.MemPages)
	put(16, si.RingGFN)
	put(24, si.DataGFN)
	put(32, si.DataLen)
	put(40, uint64(si.Port))
	put(48, si.ServeGFN)
	put(56, uint64(si.ServePort))
	put(64, si.ServeFrames)
	return b
}

// UnmarshalStartInfo decodes a start-info record.
func UnmarshalStartInfo(b []byte) (*StartInfo, error) {
	if len(b) < StartInfoSize {
		return nil, fmt.Errorf("xen: short start info")
	}
	get := func(off int) uint64 {
		var v uint64
		for i := 0; i < 8; i++ {
			v |= uint64(b[off+i]) << (8 * i)
		}
		return v
	}
	return &StartInfo{
		DomID:       DomID(get(0)),
		MemPages:    get(8),
		RingGFN:     get(16),
		DataGFN:     get(24),
		DataLen:     get(32),
		Port:        uint32(get(40)),
		ServeGFN:    get(48),
		ServePort:   uint32(get(56)),
		ServeFrames: get(64),
	}, nil
}

// Domain is one guest VM.
type Domain struct {
	ID       DomID
	Name     string
	MemPages int

	// mu is the domain's own lock (lock rank: domain), held by whichever
	// scheduler owns the current quantum for its whole duration. It
	// guards the domain's VMCB dispatch state, interposer seam, NPT
	// mutations, dirty log and console. Shared-structure locks are
	// always acquired inside it, never the other way around.
	mu lockrank.Mutex

	// framesMu (lock rank: frames) guards the Frames backing map. It is
	// separate from mu because foreign quanta read it on grant map
	// (GPAFrame) while the owner's quantum may be populating pages.
	framesMu lockrank.RWMutex

	// ctl is the controller port this domain's host-side work drives:
	// the machine's root controller under serial scheduling, the
	// runner's per-core view while a parallel runner owns the domain.
	// Cycle costs of exit dispatch thus land on the quantum that caused
	// them in both modes.
	ctl *hw.Controller

	// cycles accumulates the simulated cycles this domain's quanta have
	// consumed (read via Xen.DomainCycles).
	cycles atomic.Uint64

	// console buffers HCConsoleIO output (under mu).
	console []byte

	// NPT is the nested page table mapping GPA to HPA.
	NPT *mmu.Space
	// NPTPages tracks all NPT table pages for protection registration.
	NPTPages []hw.PFN

	// VMCBPFN holds the plaintext VMCB page.
	VMCBPFN hw.PFN

	// SEV state.
	SEV    bool
	ASID   hw.ASID
	Handle sev.Handle

	// Frames maps guest frame number to host frame (0 = unbacked).
	Frames []hw.PFN

	// Dirty is the domain's dirty-page log, armed by StartDirtyLog during
	// pre-copy live migration.
	Dirty *mmu.DirtyLog

	// Grant is this domain's grant table.
	Grant *GrantTable

	// StartInfoPFN is the write-once boot-parameter page.
	StartInfoPFN hw.PFN
	Info         StartInfo

	vcpu *VCPU
	Dead bool
	// pendingFault injects a failure into the guest's next resume when
	// an NPF could not be resolved.
	pendingFault bool
	// NPTGen counts NPT mutations; guest-side translation caches flush
	// when it changes (the host's INVLPGA on map changes).
	NPTGen uint64
}

// VMCBPA returns the physical address of the domain's VMCB.
func (d *Domain) VMCBPA() hw.PhysAddr { return d.VMCBPFN.Addr() }

// GPAFrame returns the host frame backing a guest frame, or false if
// unbacked. Safe to call from foreign quanta (grant map) and from under
// the gate lock: frames ranks below both.
func (d *Domain) GPAFrame(gfn uint64) (hw.PFN, bool) {
	d.framesMu.RLock()
	defer d.framesMu.RUnlock()
	if gfn >= uint64(len(d.Frames)) || d.Frames[gfn] == 0 {
		return 0, false
	}
	return d.Frames[gfn], true
}

// DomainConfig parameterises domain creation.
type DomainConfig struct {
	Name     string
	MemPages int
	// SEV enables memory encryption for the guest.
	SEV bool
	// ExternalSEV means the caller (Fidelius) manages the firmware
	// contexts; CreateDomain will not issue LAUNCH/ACTIVATE itself.
	ExternalSEV bool
	// Lazy disables the eager batched NPT population of Section 4.3.4;
	// guest frames are then allocated on NPT violations at runtime.
	Lazy bool
}

// CreateDomain builds a guest: VMCB, grant table, NPT (eagerly populated
// unless Lazy), guest memory, start info, and — unless ExternalSEV — the
// SEV firmware context, activated under a fresh ASID.
func (x *Xen) CreateDomain(cfg DomainConfig) (*Domain, error) {
	if cfg.MemPages <= 0 {
		return nil, fmt.Errorf("xen: domain needs memory")
	}
	d := &Domain{
		Name:     cfg.Name,
		MemPages: cfg.MemPages,
		SEV:      cfg.SEV,
		Frames:   make([]hw.PFN, cfg.MemPages),
		Dirty:    mmu.NewDirtyLog(cfg.MemPages),
		ctl:      x.M.Ctl,
	}
	d.mu.Init(lockrank.RankDomain, &x.M.Waits.Domain)
	d.framesMu.Init(lockrank.RankFrames, &x.M.Waits.Frames)
	x.domsMu.Lock()
	d.ID = x.nextDom
	x.nextDom++
	x.domsMu.Unlock()

	vmcb, err := x.M.Alloc.Alloc(UseVMCB, d.ID)
	if err != nil {
		return nil, err
	}
	d.VMCBPFN = vmcb
	if err := cpu.StoreVMCB(x.M.Ctl, d.VMCBPA(), &cpu.VMCB{GuestASID: uint32(d.ASID), SEVEnabled: d.SEV}); err != nil {
		return nil, err
	}

	d.Grant, err = newGrantTable(x.M.Ctl, x.M.Alloc, d.ID)
	if err != nil {
		return nil, err
	}

	// NPT root.
	root, err := x.newPTPage(d)
	if err != nil {
		return nil, err
	}
	d.NPT = &mmu.Space{Ctl: x.M.Ctl, Root: root}

	// Guest memory: allocated up front; NPT populated eagerly in a
	// batched manner during boot (Section 4.3.4) unless Lazy.
	for gfn := 0; gfn < cfg.MemPages; gfn++ {
		if cfg.Lazy {
			continue
		}
		pfn, err := x.M.Alloc.Alloc(UseGuest, d.ID)
		if err != nil {
			return nil, err
		}
		d.Frames[gfn] = pfn
		if err := x.MapNPT(d, uint64(gfn)<<hw.PageShift, mmu.MakePTE(pfn, mmu.FlagP|mmu.FlagW|mmu.FlagU)); err != nil {
			return nil, err
		}
	}

	// SEV context. The ASID comes from the pool, which recycles retired
	// ASIDs behind a DF_FLUSH once the hardware limit is reached.
	if cfg.SEV {
		asid, err := x.ASIDs.Alloc()
		if err != nil {
			return nil, err
		}
		d.ASID = asid
		if !cfg.ExternalSEV {
			h, err := x.M.FW.LaunchStart(0)
			if err != nil {
				return nil, err
			}
			d.Handle = h
			if err := x.M.FW.LaunchFinish(h); err != nil {
				return nil, err
			}
			if err := x.M.FW.Activate(h, d.ASID); err != nil {
				return nil, err
			}
		}
		if err := x.updateVMCB(d, func(v *cpu.VMCB) {
			v.GuestASID = uint32(d.ASID)
			v.SEVEnabled = true
			v.NPTRoot = uint64(d.NPT.Root.Addr())
		}); err != nil {
			return nil, err
		}
	} else {
		if err := x.updateVMCB(d, func(v *cpu.VMCB) {
			v.NPTRoot = uint64(d.NPT.Root.Addr())
		}); err != nil {
			return nil, err
		}
	}

	// Start-info page: allocated now, written exactly once by
	// WriteStartInfo after the toolstack finishes attaching devices.
	si, err := x.M.Alloc.Alloc(UseXenData, d.ID)
	if err != nil {
		return nil, err
	}
	d.StartInfoPFN = si
	if err := x.Interpose.RegisterWriteOnce(si); err != nil {
		return nil, err
	}
	d.Info = StartInfo{DomID: d.ID, MemPages: uint64(cfg.MemPages)}

	// Register the domain with the machine's telemetry hub so events and
	// per-VM metrics carry its name and ASID mapping.
	tel := x.M.Ctl.Telem
	tel.NameVM(uint32(d.ID), d.Name)
	if d.ASID != 0 {
		tel.MapASID(uint32(d.ASID), uint32(d.ID))
	}
	if tel != nil {
		tel.Reg.RegisterFunc("cycles.vm", func() uint64 { return d.cycles.Load() },
			"vm", fmt.Sprint(uint32(d.ID)))
	}

	x.domsMu.Lock()
	x.Doms[d.ID] = d
	x.vmcbToDom[d.VMCBPA()] = d
	x.domsMu.Unlock()
	return d, nil
}

// WriteStartInfo publishes the domain's boot parameters to its start-info
// page. The page is under the write-once policy: the first write succeeds,
// any later write is a policy violation under Fidelius. The write runs on
// the boot CPU and may fault into the trusted context, so it holds the
// gate lock.
func (x *Xen) WriteStartInfo(d *Domain) error {
	x.M.Host.Lock()
	defer x.M.Host.Unlock()
	return x.M.CPU.WriteVA(uint64(d.StartInfoPFN.Addr()), d.Info.Marshal())
}

// newPTPage allocates, zeroes and registers one NPT table page.
func (x *Xen) newPTPage(d *Domain) (hw.PFN, error) {
	pfn, err := x.M.Alloc.Alloc(UseNPT, d.ID)
	if err != nil {
		return 0, err
	}
	var zero [hw.PageSize]byte
	if err := x.M.Ctl.Mem.WriteRaw(pfn.Addr(), zero[:]); err != nil {
		return 0, err
	}
	x.M.Ctl.Cache.Invalidate(pfn.Addr(), hw.PageSize)
	d.NPTPages = append(d.NPTPages, pfn)
	if err := x.Interpose.NewPTPage(d, pfn); err != nil {
		return 0, err
	}
	return pfn, nil
}

// readPTE reads a page-table entry from physical memory through the
// domain's controller port (reads of write-protected structures are
// always permitted).
func (x *Xen) readPTE(d *Domain, slot hw.PhysAddr) (mmu.PTE, error) {
	var b [8]byte
	if err := d.ctl.Read(hw.Access{PA: slot}, b[:]); err != nil {
		return 0, err
	}
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return mmu.PTE(v), nil
}

// MapNPT installs gpa→pte in d's NPT, allocating intermediate table pages
// as needed. Every entry write goes through the interposer (Fidelius's
// type 1 gate); table-page allocations are registered so they can be
// write-protected.
func (x *Xen) MapNPT(d *Domain, gpa uint64, pte mmu.PTE) error {
	table := d.NPT.Root
	for level := mmu.Levels - 1; level > 0; level-- {
		slot := table.Addr() + hw.PhysAddr(mmu.Index(gpa, level)*8)
		entry, err := x.readPTE(d, slot)
		if err != nil {
			return err
		}
		if !entry.Present() {
			pfn, err := x.newPTPage(d)
			if err != nil {
				return err
			}
			entry = mmu.MakePTE(pfn, mmu.FlagP|mmu.FlagW|mmu.FlagU)
			if err := x.Interpose.WritePTE(d, slot, entry); err != nil {
				return err
			}
		}
		table = entry.PFN()
	}
	slot := table.Addr() + hw.PhysAddr(mmu.Index(gpa, 0)*8)
	if err := x.Interpose.WritePTE(d, slot, pte); err != nil {
		return err
	}
	d.NPTGen++
	return nil
}

// NPTLeafSlot returns the physical address of the leaf NPT entry for gpa,
// failing if intermediate levels are missing.
func (x *Xen) NPTLeafSlot(d *Domain, gpa uint64) (hw.PhysAddr, error) {
	table := d.NPT.Root
	for level := mmu.Levels - 1; level > 0; level-- {
		slot := table.Addr() + hw.PhysAddr(mmu.Index(gpa, level)*8)
		entry, err := x.readPTE(d, slot)
		if err != nil {
			return 0, err
		}
		if !entry.Present() {
			return 0, fmt.Errorf("xen: gpa %#x not mapped at level %d", gpa, level)
		}
		table = entry.PFN()
	}
	return table.Addr() + hw.PhysAddr(mmu.Index(gpa, 0)*8), nil
}

// updateVMCB loads, mutates and stores the domain's VMCB.
func (x *Xen) updateVMCB(d *Domain, f func(*cpu.VMCB)) error {
	v, err := cpu.LoadVMCB(d.ctl, d.VMCBPA())
	if err != nil {
		return err
	}
	f(v)
	return cpu.StoreVMCB(d.ctl, d.VMCBPA(), v)
}

// DestroyDomain tears a guest down: SEV deactivate/decommission (unless
// externally managed), frame reclamation, ASID retirement into the pool's
// dirty list, and interposer notification so Fidelius can scrub PIT/GIT
// state (Section 4.3.8). It holds the domain lock: a teardown racing a
// quantum waits for the quantum to finish.
func (x *Xen) DestroyDomain(d *Domain, externalSEV bool) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.Dead {
		return nil
	}
	d.Dead = true
	if d.SEV && !externalSEV {
		if err := x.M.FW.Deactivate(d.Handle); err != nil {
			return err
		}
		if err := x.M.FW.Decommission(d.Handle); err != nil {
			return err
		}
	}
	// The ASID is now retired-but-dirty; the pool refuses to hand it out
	// again until a DF_FLUSH has scrubbed the fabric.
	x.ASIDs.Retire(d.ASID)
	if err := x.Interpose.DomainDestroyed(d); err != nil {
		return err
	}
	d.framesMu.Lock()
	for _, pfn := range d.Frames {
		if pfn != 0 {
			x.M.Alloc.Free(pfn)
		}
	}
	d.framesMu.Unlock()
	for _, pfn := range d.NPTPages {
		x.M.Alloc.Free(pfn)
	}
	x.M.Alloc.Free(d.VMCBPFN)
	x.M.Alloc.Free(d.Grant.PagePFN)
	if d.StartInfoPFN != 0 {
		x.M.Alloc.Free(d.StartInfoPFN)
	}
	// Drop the per-VM cycle reader so lifecycle churn does not accumulate
	// registry entries (or keep dead domains reachable through them).
	x.M.Ctl.Telem.Reg.UnregisterFunc("cycles.vm", "vm", fmt.Sprint(uint32(d.ID)))
	x.domsMu.Lock()
	delete(x.Doms, d.ID)
	delete(x.vmcbToDom, d.VMCBPA())
	x.domsMu.Unlock()
	return nil
}
