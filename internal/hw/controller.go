package hw

import (
	"fidelius/internal/cycles"
	"fidelius/internal/telemetry"
)

// Access describes one memory transaction as seen by the memory controller:
// the physical address, whether the translation carried the C-bit, and the
// ASID tag of the issuing context.
type Access struct {
	PA        PhysAddr
	Encrypted bool
	ASID      ASID
}

// Controller is the memory controller: every CPU-originated access goes
// through it, consulting the cache and the AES engine. DMA bypasses it via
// the DMA type.
type Controller struct {
	Mem    *Memory
	Eng    *Engine
	Cache  *Cache
	Cycles *cycles.Counter

	// Telem is this machine's telemetry hub: the controller owns it
	// because every layer above (MMU, CPU, SEV firmware, hypervisor)
	// already holds a controller reference, and the hub's clock is the
	// controller's cycle counter. Hub methods are nil-safe, so a
	// hand-built Controller{} without a hub still works.
	Telem *telemetry.Hub

	// Integ, when non-nil, is the optional Bonsai-Merkle integrity
	// engine of Section 8: protected lines are verified on every read
	// from DRAM and re-hashed on every mediated write. Physical writes
	// that bypass the controller (DMA, rowhammer) break verification.
	Integ *Integrity

	// Transaction accounting. Plain fields, same single-owner discipline
	// as Cycles: the vCPU handoff is synchronous, so exactly one
	// goroutine drives the controller at a time and the channel edges
	// order the increments. Served through Telem.Reg as reader funcs —
	// one accounting mechanism, no duplicate atomics on the hot path.
	reads, writes         uint64
	readBytes, writeBytes uint64
	decLines, encLines    uint64 // cache lines through the AES engine
	dmaReads, dmaWrites   uint64

	// rmw is the write path's read-modify-write staging buffer, reused
	// across transactions under the same single-owner discipline as the
	// counters above.
	rmw []byte
}

// NewController wires a controller over memory with a cache of cacheLines
// lines.
func NewController(mem *Memory, cacheLines int) *Controller {
	c := &Controller{
		Mem:    mem,
		Eng:    NewEngine(),
		Cache:  NewCache(cacheLines),
		Cycles: &cycles.Counter{},
	}
	c.Telem = telemetry.New(c.Cycles.Total)
	reg := c.Telem.Reg
	reg.RegisterFunc("cycles.total", c.Cycles.Total)
	reg.RegisterFunc("mem.reads", func() uint64 { return c.reads })
	reg.RegisterFunc("mem.writes", func() uint64 { return c.writes })
	reg.RegisterFunc("mem.read_bytes", func() uint64 { return c.readBytes })
	reg.RegisterFunc("mem.write_bytes", func() uint64 { return c.writeBytes })
	reg.RegisterFunc("mem.dec_lines", func() uint64 { return c.decLines })
	reg.RegisterFunc("mem.enc_lines", func() uint64 { return c.encLines })
	reg.RegisterFunc("dma.reads", func() uint64 { return c.dmaReads })
	reg.RegisterFunc("dma.writes", func() uint64 { return c.dmaWrites })
	reg.RegisterFunc("cache.hits", func() uint64 { h, _ := c.Cache.Stats(); return h })
	reg.RegisterFunc("cache.misses", func() uint64 { _, m := c.Cache.Stats(); return m })
	reg.RegisterFunc("cache.lines", func() uint64 { return uint64(c.Cache.Len()) })
	reg.RegisterFunc("cache.evictions", func() uint64 { return c.Cache.Evictions() })
	reg.RegisterFunc("engine.keys", func() uint64 { return uint64(c.Eng.Keys()) })
	return c
}

func (c *Controller) charge(n uint64) {
	if c.Cycles != nil {
		c.Cycles.Charge(n)
	}
}

// Read performs a CPU read. Plaintext is returned for encrypted pages only
// when the issuing ASID's key is installed; a missing key is a fault.
//
// Cache hits return the cached plaintext regardless of the accessing ASID —
// this deliberately reproduces the pre-SNP micro-architecture the paper's
// inter-VM remapping attack exploits (Section 6.2, "a cache-hit may happen
// in a high probability to leak privacy"). The key slot is therefore
// resolved lazily, on the first line actually fetched from DRAM: a fully
// cache-resident read never consults the engine, exactly as the hardware
// never would.
func (c *Controller) Read(a Access, buf []byte) error {
	if err := c.Mem.check(a.PA, len(buf)); err != nil {
		return err
	}
	c.reads++
	c.readBytes += uint64(len(buf))
	var slot *PageCipher // resolved once, on the first decrypting miss
	decrypted := uint64(0)
	done := 0
	for done < len(buf) {
		pa := a.PA + PhysAddr(done)
		base := lineBase(pa)
		off := int(pa - base)
		n := LineSize - off
		if n > len(buf)-done {
			n = len(buf) - done
		}
		line, hit := c.Cache.Lookup(pa)
		if hit {
			c.charge(cycles.CacheAccess)
			copy(buf[done:done+n], line[off:off+n])
			done += n
			continue
		}
		c.charge(cycles.MemAccess)
		if a.Encrypted {
			c.charge(cycles.MemEncryptExtra)
		}
		if c.Integ != nil && c.Integ.Protected(base.Frame()) {
			c.charge(cycles.IntegrityCheck)
			if err := c.Integ.Verify(base, LineSize); err != nil {
				return err
			}
		}
		var fill [LineSize]byte
		end := base + LineSize
		span := LineSize
		if uint64(end) > c.Mem.Size() {
			span = int(PhysAddr(c.Mem.Size()) - base)
		}
		if err := c.Mem.ReadRaw(base, fill[:span]); err != nil {
			return err
		}
		if a.Encrypted {
			if slot == nil {
				s, err := c.Eng.Slot(a.ASID)
				if err != nil {
					return err
				}
				slot = s
			}
			slot.DecryptLine(base, fill[:span])
			c.decLines++
			decrypted++
		}
		if span == LineSize {
			c.Cache.Fill(base, &fill)
		}
		copy(buf[done:done+n], fill[off:off+n])
		done += n
	}
	if decrypted > 0 && c.Telem.Tracing() {
		c.Telem.Emit(telemetry.KindMemDecrypt,
			c.Telem.VMForASID(uint32(a.ASID)), uint32(a.ASID),
			decrypted*cycles.MemEncryptExtra, uint64(a.PA), uint64(len(buf)))
	}
	return nil
}

// Write performs a CPU write. The cache is write-through: DRAM always holds
// the current (ciphertext, for encrypted pages) contents.
func (c *Controller) Write(a Access, data []byte) error {
	if err := c.Mem.check(a.PA, len(data)); err != nil {
		return err
	}
	// Resolve the key slot before touching any state: a write with no
	// installed key must fault without mutating cached plaintext, or the
	// cache and DRAM fall out of sync.
	var slot *PageCipher
	if a.Encrypted {
		s, err := c.Eng.Slot(a.ASID)
		if err != nil {
			return err
		}
		slot = s
	}
	c.writes++
	c.writeBytes += uint64(len(data))
	// Update any cached plaintext lines in place (no write-allocate).
	done := 0
	for done < len(data) {
		pa := a.PA + PhysAddr(done)
		base := lineBase(pa)
		off := int(pa - base)
		n := LineSize - off
		if n > len(data)-done {
			n = len(data) - done
		}
		if line, ok := c.Cache.Peek(pa); ok {
			copy(line[off:off+n], data[done:done+n])
		}
		done += n
	}
	// Charge per cache line touched, as the write buffer drains them.
	lines := uint64((a.PA+PhysAddr(len(data))-1)/LineSize - a.PA/LineSize + 1)
	c.charge(lines * cycles.MemAccess)
	defer func() {
		if c.Integ != nil {
			c.charge(lines * cycles.IntegrityCheck)
			_ = c.Integ.Update(a.PA, len(data))
		}
	}()
	if !a.Encrypted {
		return c.Mem.WriteRaw(a.PA, data)
	}
	c.charge(lines * cycles.MemEncryptExtra)
	c.encLines += lines
	if c.Telem.Tracing() {
		c.Telem.Emit(telemetry.KindMemEncrypt,
			c.Telem.VMForASID(uint32(a.ASID)), uint32(a.ASID),
			lines*cycles.MemEncryptExtra, uint64(a.PA), uint64(len(data)))
	}
	// Read-modify-write the whole overlapped block-aligned span through
	// the engine in one DRAM round trip. Only partially-overwritten edge
	// blocks need decrypting; interior blocks are fully replaced. The
	// span is clamped to the installed memory, mirroring Read: trailing
	// sub-block bytes at the very top of DRAM are stored raw.
	end := a.PA + PhysAddr(len(data))
	first := a.PA &^ (BlockSize - 1)
	spanEnd := (end + BlockSize - 1) &^ (BlockSize - 1)
	if uint64(spanEnd) > c.Mem.Size() {
		spanEnd = PhysAddr(c.Mem.Size())
	}
	span := int(spanEnd - first)
	if cap(c.rmw) < span {
		c.rmw = make([]byte, span)
	}
	buf := c.rmw[:span]
	if err := c.Mem.ReadRaw(first, buf); err != nil {
		return err
	}
	// fullEnd bounds the whole blocks in the span; a clamped span may
	// leave a raw sub-block tail past it. Only edge blocks that keep
	// pre-existing bytes need decrypting; interior blocks are replaced
	// wholesale.
	fullEnd := first + PhysAddr(span-span%BlockSize)
	if fullEnd > first {
		if first < a.PA || first+BlockSize > end {
			slot.DecryptBlock(first, buf[:BlockSize])
		}
		if tail := fullEnd - BlockSize; tail > first && fullEnd > end {
			o := int(tail - first)
			slot.DecryptBlock(tail, buf[o:o+BlockSize])
		}
	}
	copy(buf[a.PA-first:], data)
	slot.EncryptLine(first, buf)
	return c.Mem.WriteRaw(first, buf)
}

// ReadPage reads a full page.
func (c *Controller) ReadPage(pfn PFN, encrypted bool, asid ASID, buf *[PageSize]byte) error {
	return c.Read(Access{PA: pfn.Addr(), Encrypted: encrypted, ASID: asid}, buf[:])
}

// WritePage writes a full page.
func (c *Controller) WritePage(pfn PFN, encrypted bool, asid ASID, data *[PageSize]byte) error {
	return c.Write(Access{PA: pfn.Addr(), Encrypted: encrypted, ASID: asid}, data[:])
}

// FirmwareWrite stores bytes on behalf of the SEV firmware: raw DRAM
// write with cache invalidation and — because the firmware lives in the
// secure processor next to the BMT root — an integrity-tree update.
func (c *Controller) FirmwareWrite(pa PhysAddr, data []byte) error {
	c.Cache.Invalidate(pa, len(data))
	if err := c.Mem.WriteRaw(pa, data); err != nil {
		return err
	}
	if c.Integ != nil {
		return c.Integ.Update(pa, len(data))
	}
	return nil
}

// DMA is the I/O device view of memory: raw DRAM, no keys. SEV hardware
// forbids DMA into encrypted pages precisely because this path cannot
// decrypt; a DMA read of an encrypted page observes ciphertext.
type DMA struct {
	ctl *Controller
}

// DMA returns the DMA port of the controller.
func (c *Controller) DMA() *DMA { return &DMA{ctl: c} }

// Read copies raw DRAM bytes (ciphertext for encrypted pages).
func (d *DMA) Read(pa PhysAddr, buf []byte) error {
	d.ctl.charge(cycles.MemAccess)
	d.ctl.dmaReads++
	return d.ctl.Mem.ReadRaw(pa, buf)
}

// Write stores raw bytes and invalidates overlapping cache lines, exactly
// as a coherent DMA write would.
func (d *DMA) Write(pa PhysAddr, data []byte) error {
	d.ctl.charge(cycles.MemAccess)
	d.ctl.dmaWrites++
	d.ctl.Cache.Invalidate(pa, len(data))
	return d.ctl.Mem.WriteRaw(pa, data)
}
